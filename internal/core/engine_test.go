package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
	"simba/internal/im"
)

// --- shared fixture against real simulated services ---------------------

type engineFixture struct {
	sim    *clock.Sim
	imSvc  *im.Service
	emSvc  *email.Service
	engine *Engine
	srcEp  *DirectIM
}

func newEngineFixture(t *testing.T) *engineFixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	imSvc, err := im.NewService(im.Config{
		Clock:    sim,
		RNG:      dist.NewRNG(1),
		HopDelay: dist.Fixed(300 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	emSvc, err := email.NewService(email.Config{
		Clock: sim,
		RNG:   dist.NewRNG(2),
		Delay: dist.Fixed(20 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &engineFixture{sim: sim, imSvc: imSvc, emSvc: emSvc}

	if err := imSvc.Register("source"); err != nil {
		t.Fatal(err)
	}
	if _, err := emSvc.CreateMailbox("source@sim"); err != nil {
		t.Fatal(err)
	}
	emailSender, err := NewDirectEmail(emSvc, "source@sim")
	if err != nil {
		t.Fatal(err)
	}
	srcEp, err := NewDirectIM(sim, imSvc, "source", nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(sim, srcEp, emailSender)
	if err != nil {
		t.Fatal(err)
	}
	// Wire inbound messages (acks) into the engine.
	srcEp.onMessage = func(m im.Message) { engine.HandleIncoming(m) }
	if err := srcEp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srcEp.Stop)
	f.engine = engine
	f.srcEp = srcEp
	return f
}

// addUserEndpoint registers an IM user that auto-acks alert IMs after
// thinkTime. It returns the endpoint and a recorder of received texts.
func (f *engineFixture) addUserEndpoint(t *testing.T, handle string, thinkTime time.Duration, ack bool) (*DirectIM, *recordedMsgs) {
	t.Helper()
	if err := f.imSvc.Register(handle); err != nil {
		t.Fatal(err)
	}
	rec := &recordedMsgs{}
	var ep *DirectIM
	var err error
	ep, err = NewDirectIM(f.sim, f.imSvc, handle, func(m im.Message) {
		if _, isAck := ParseAck(m.Text); isAck {
			return
		}
		rec.add(m)
		if ack {
			f.sim.AfterFunc(thinkTime, func() {
				_, _ = ep.Send(m.From, AckText(m.Seq))
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ep.Stop)
	return ep, rec
}

type recordedMsgs struct {
	mu   sync.Mutex
	msgs []im.Message
}

func (r *recordedMsgs) add(m im.Message) {
	r.mu.Lock()
	r.msgs = append(r.msgs, m)
	r.mu.Unlock()
}

func (r *recordedMsgs) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func testAlert(f *engineFixture) *alert.Alert {
	return &alert.Alert{
		ID:       alert.NextID("test"),
		Source:   "unit-test",
		Keywords: []string{"Stocks"},
		Subject:  "subject",
		Body:     "body",
		Urgency:  alert.UrgencyHigh,
		Created:  f.sim.Now(),
	}
}

// drive runs fn in a goroutine while advancing the simulated clock
// until it finishes, returning its result.
func drive[T any](t *testing.T, sim *clock.Sim, fn func() T) T {
	t.Helper()
	done := make(chan T, 1)
	go func() { done <- fn() }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case v := <-done:
			return v
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("drive: function did not finish")
		}
		sim.Advance(500 * time.Millisecond)
	}
}

type deliverResult struct {
	report *Report
	err    error
}

func deliver(t *testing.T, f *engineFixture, a *alert.Alert, reg *addr.Registry, mode *dmode.Mode) deliverResult {
	t.Helper()
	return drive(t, f.sim, func() deliverResult {
		rep, err := f.engine.Deliver(a, reg, mode)
		return deliverResult{rep, err}
	})
}

func userRegistry(t *testing.T, user string, addrs ...addr.Address) *addr.Registry {
	t.Helper()
	reg := addr.NewRegistry(user)
	for _, a := range addrs {
		if err := reg.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// --- tests ---------------------------------------------------------------

func TestAckTextRoundTrip(t *testing.T) {
	seq, ok := ParseAck(AckText(42))
	if !ok || seq != 42 {
		t.Fatalf("ParseAck = %d, %v", seq, ok)
	}
	for _, in := range []string{"", "hello", "SIMBA-ACK", "SIMBA-ACK x", "SIMBA-ACK -1"} {
		if _, ok := ParseAck(in); ok {
			t.Fatalf("ParseAck(%q) = true", in)
		}
	}
}

func TestDeliverViaIMWithAck(t *testing.T) {
	f := newEngineFixture(t)
	_, rec := f.addUserEndpoint(t, "alice-im", 0, true)
	reg := userRegistry(t, "alice",
		addr.Address{Type: addr.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true})
	mode := &dmode.Mode{Name: "im-only", Blocks: []dmode.Block{{
		Timeout: dmode.Duration(10 * time.Second),
		Actions: []dmode.Action{{Address: "MSN IM"}},
	}}}
	a := testAlert(f)
	res := deliver(t, f, a, reg, mode)
	if res.err != nil {
		t.Fatalf("Deliver: %v", res.err)
	}
	rep := res.report
	if !rep.Delivered || rep.DeliveredVia != "MSN IM" {
		t.Fatalf("report = %+v", rep)
	}
	// One IM hop out (300ms) + ack hop back (300ms).
	if got := rep.Latency(); got < 500*time.Millisecond || got > 1500*time.Millisecond {
		t.Fatalf("latency = %v, want ~600ms", got)
	}
	if rec.count() != 1 {
		t.Fatalf("user received %d messages", rec.count())
	}
	if rep.Blocks[0].Actions[0].AckedAt.IsZero() {
		t.Fatal("action not marked acked")
	}
	if f.engine.PendingAcks() != 0 {
		t.Fatal("pending acks leaked")
	}
}

func TestDeliverFallsBackToEmailWhenUserOffline(t *testing.T) {
	f := newEngineFixture(t)
	// Register the IM handle but never log in: send fails immediately
	// with recipient-offline, so no block timeout is consumed.
	if err := f.imSvc.Register("alice-im"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.emSvc.CreateMailbox("alice@work.sim"); err != nil {
		t.Fatal(err)
	}
	reg := userRegistry(t, "alice",
		addr.Address{Type: addr.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true},
		addr.Address{Type: addr.TypeEmail, Name: "Work email", Target: "alice@work.sim", Enabled: true})
	mode := dmode.IMThenEmail("MSN IM", "Work email", 10*time.Second)
	a := testAlert(f)
	start := f.sim.Now()
	res := deliver(t, f, a, reg, mode)
	if res.err != nil {
		t.Fatalf("Deliver: %v", res.err)
	}
	rep := res.report
	if !rep.Delivered || rep.DeliveredVia != "Work email" {
		t.Fatalf("report = %+v", rep)
	}
	if !rep.Blocks[0].Succeeded == false || len(rep.Blocks) != 2 {
		t.Fatalf("blocks = %+v", rep.Blocks)
	}
	if !errors.Is(rep.Blocks[0].Actions[0].Err, im.ErrRecipientOffline) {
		t.Fatalf("block 0 err = %v", rep.Blocks[0].Actions[0].Err)
	}
	// Offline detection is synchronous: no 10s wait.
	if rep.FinishedAt.Sub(start) > 5*time.Second {
		t.Fatalf("fallback took %v, should be immediate", rep.FinishedAt.Sub(start))
	}
	// The email actually lands in the mailbox.
	f.sim.Advance(time.Minute)
	mb, _ := f.emSvc.Mailbox("alice@work.sim")
	msgs := mb.Fetch()
	if len(msgs) != 1 {
		t.Fatalf("mailbox has %d messages", len(msgs))
	}
	var got alert.Alert
	if err := got.UnmarshalText([]byte(msgs[0].Body)); err != nil {
		t.Fatalf("email body is not an alert payload: %v", err)
	}
	if got.ID != a.ID {
		t.Fatalf("delivered alert ID %q, want %q", got.ID, a.ID)
	}
}

func TestDeliverFallsBackAfterAckTimeout(t *testing.T) {
	f := newEngineFixture(t)
	// User endpoint online but never acks (away from desk).
	_, rec := f.addUserEndpoint(t, "alice-im", 0, false)
	if _, err := f.emSvc.CreateMailbox("alice@work.sim"); err != nil {
		t.Fatal(err)
	}
	reg := userRegistry(t, "alice",
		addr.Address{Type: addr.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true},
		addr.Address{Type: addr.TypeEmail, Name: "Work email", Target: "alice@work.sim", Enabled: true})
	mode := dmode.IMThenEmail("MSN IM", "Work email", 10*time.Second)
	a := testAlert(f)
	start := f.sim.Now()
	res := deliver(t, f, a, reg, mode)
	if res.err != nil {
		t.Fatalf("Deliver: %v", res.err)
	}
	rep := res.report
	if !rep.Delivered || rep.DeliveredVia != "Work email" {
		t.Fatalf("report = %+v", rep)
	}
	elapsed := rep.FinishedAt.Sub(start)
	if elapsed < 10*time.Second {
		t.Fatalf("fell back after %v, before the 10s ack timeout", elapsed)
	}
	if rec.count() != 1 {
		t.Fatal("IM alert was not delivered to the online user")
	}
	if f.engine.PendingAcks() != 0 {
		t.Fatal("pending ack leaked after timeout")
	}
}

func TestDisabledSMSAddressFailsBlock(t *testing.T) {
	// The paper's scenario: SMS disabled while traveling → any block
	// containing the SMS action automatically fails and falls back.
	f := newEngineFixture(t)
	if _, err := f.emSvc.CreateMailbox("5551234@sms.sim"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.emSvc.CreateMailbox("alice@home.sim"); err != nil {
		t.Fatal(err)
	}
	reg := userRegistry(t, "alice",
		addr.Address{Type: addr.TypeSMS, Name: "Cell SMS", Target: "5551234@sms.sim", Enabled: true},
		addr.Address{Type: addr.TypeEmail, Name: "Home email", Target: "alice@home.sim", Enabled: true})
	if err := reg.SetEnabled("Cell SMS", false); err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{Name: "sms-first", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "Cell SMS"}}},
		{Actions: []dmode.Action{{Address: "Home email"}}},
	}}
	res := deliver(t, f, testAlert(f), reg, mode)
	if res.err != nil {
		t.Fatalf("Deliver: %v", res.err)
	}
	rep := res.report
	if rep.DeliveredVia != "Home email" {
		t.Fatalf("DeliveredVia = %q", rep.DeliveredVia)
	}
	if !errors.Is(rep.Blocks[0].Actions[0].Err, ErrAddressDisabled) {
		t.Fatalf("block 0 err = %v", rep.Blocks[0].Actions[0].Err)
	}
}

func TestEnabledSMSSucceedsImmediately(t *testing.T) {
	f := newEngineFixture(t)
	if _, err := f.emSvc.CreateMailbox("5551234@sms.sim"); err != nil {
		t.Fatal(err)
	}
	reg := userRegistry(t, "alice",
		addr.Address{Type: addr.TypeSMS, Name: "Cell SMS", Target: "5551234@sms.sim", Enabled: true})
	mode := &dmode.Mode{Name: "sms", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "Cell SMS"}}},
	}}
	res := deliver(t, f, testAlert(f), reg, mode)
	if res.err != nil || res.report.DeliveredVia != "Cell SMS" {
		t.Fatalf("res = %+v, %v", res.report, res.err)
	}
	// Fire-and-forget: no block timeout consumed.
	if res.report.Latency() > time.Second {
		t.Fatalf("latency = %v", res.report.Latency())
	}
}

func TestAllBlocksFailed(t *testing.T) {
	f := newEngineFixture(t)
	reg := userRegistry(t, "alice") // no addresses at all
	mode := &dmode.Mode{Name: "m", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "ghost"}}},
	}}
	res := deliver(t, f, testAlert(f), reg, mode)
	if !errors.Is(res.err, ErrAllBlocksFailed) {
		t.Fatalf("err = %v", res.err)
	}
	if res.report == nil || res.report.Delivered {
		t.Fatalf("report = %+v", res.report)
	}
	if !errors.Is(res.report.Blocks[0].Actions[0].Err, ErrUnknownAddress) {
		t.Fatalf("action err = %v", res.report.Blocks[0].Actions[0].Err)
	}
}

func TestDeliverValidatesInputs(t *testing.T) {
	f := newEngineFixture(t)
	reg := userRegistry(t, "alice")
	bad := testAlert(f)
	bad.ID = ""
	if _, err := f.engine.Deliver(bad, reg, dmode.Figure4()); err == nil {
		t.Fatal("invalid alert accepted")
	}
	badMode := &dmode.Mode{Name: ""}
	if _, err := f.engine.Deliver(testAlert(f), reg, badMode); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestNoChannelConfigured(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	engine, err := NewEngine(sim, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := userRegistry(t, "alice",
		addr.Address{Type: addr.TypeIM, Name: "IM", Target: "x", Enabled: true},
		addr.Address{Type: addr.TypeEmail, Name: "EM", Target: "y", Enabled: true})
	mode := &dmode.Mode{Name: "m", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "IM"}, {Address: "EM"}}},
	}}
	a := &alert.Alert{ID: "a", Source: "s", Urgency: alert.UrgencyLow, Created: sim.Now()}
	rep, err := engine.Deliver(a, reg, mode)
	if !errors.Is(err, ErrAllBlocksFailed) {
		t.Fatalf("err = %v", err)
	}
	for _, res := range rep.Blocks[0].Actions {
		if !errors.Is(res.Err, ErrNoChannel) {
			t.Fatalf("action err = %v", res.Err)
		}
	}
}

func TestHandleIncomingNonAck(t *testing.T) {
	f := newEngineFixture(t)
	if f.engine.HandleIncoming(im.Message{From: "x", Text: "plain message"}) {
		t.Fatal("non-ack consumed")
	}
	if !f.engine.HandleIncoming(im.Message{From: "x", Text: AckText(99)}) {
		t.Fatal("stray ack not consumed")
	}
}

func TestConcurrentDeliveries(t *testing.T) {
	f := newEngineFixture(t)
	_, _ = f.addUserEndpoint(t, "alice-im", 0, true)
	reg := userRegistry(t, "alice",
		addr.Address{Type: addr.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true})
	mode := &dmode.Mode{Name: "im-only", Blocks: []dmode.Block{{
		Timeout: dmode.Duration(10 * time.Second),
		Actions: []dmode.Action{{Address: "MSN IM"}},
	}}}
	const n = 8
	results := drive(t, f.sim, func() []deliverResult {
		var wg sync.WaitGroup
		out := make([]deliverResult, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				a := testAlert(f)
				rep, err := f.engine.Deliver(a, reg, mode)
				out[i] = deliverResult{rep, err}
			}(i)
		}
		wg.Wait()
		return out
	})
	for i, res := range results {
		if res.err != nil || !res.report.Delivered {
			t.Fatalf("delivery %d failed: %v", i, res.err)
		}
	}
	if f.engine.PendingAcks() != 0 {
		t.Fatal("pending acks leaked")
	}
}

// Property: the engine never sends to a disabled or unknown address,
// regardless of mode shape and registry state.
func TestNeverUsesDisabledAddressProperty(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	f := func(enabled []bool, blockPattern []uint8) bool {
		if len(enabled) == 0 || len(blockPattern) == 0 {
			return true
		}
		if len(enabled) > 12 {
			enabled = enabled[:12]
		}
		reg := addr.NewRegistry("u")
		for i, en := range enabled {
			err := reg.Register(addr.Address{
				Type:    addr.TypeEmail,
				Name:    fmt.Sprintf("addr-%d", i),
				Target:  fmt.Sprintf("t-%d", i),
				Enabled: en,
			})
			if err != nil {
				return false
			}
		}
		sender := &recordingEmailSender{}
		engine, err := NewEngine(sim, nil, sender)
		if err != nil {
			return false
		}
		mode := &dmode.Mode{Name: "m"}
		for bi, pat := range blockPattern {
			if bi >= 4 {
				break
			}
			b := dmode.Block{}
			for j := 0; j < 3; j++ {
				idx := (int(pat) + j*7) % (len(enabled) + 2) // sometimes unknown names
				b.Actions = append(b.Actions, dmode.Action{Address: fmt.Sprintf("addr-%d", idx)})
			}
			mode.Blocks = append(mode.Blocks, b)
		}
		a := &alert.Alert{ID: "a", Source: "s", Urgency: alert.UrgencyLow, Created: sim.Now()}
		_, _ = engine.Deliver(a, reg, mode)
		for _, target := range sender.targets() {
			var idx int
			if _, err := fmt.Sscanf(target, "t-%d", &idx); err != nil {
				return false
			}
			if idx >= len(enabled) || !enabled[idx] {
				return false // sent to unknown or disabled address
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

type recordingEmailSender struct {
	mu   sync.Mutex
	sent []string
}

func (r *recordingEmailSender) Send(to, subject, body string) error {
	r.mu.Lock()
	r.sent = append(r.sent, to)
	r.mu.Unlock()
	return nil
}

func (r *recordingEmailSender) targets() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.sent...)
}

func TestDirectIMReloginAfterKick(t *testing.T) {
	f := newEngineFixture(t)
	ep, _ := f.addUserEndpoint(t, "bob", 0, false)
	if !ep.LoggedIn() {
		t.Fatal("not logged in after Start")
	}
	f.imSvc.ForceLogout("bob")
	if ep.LoggedIn() {
		t.Fatal("LoggedIn true after kick")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !ep.LoggedIn() {
		if time.Now().After(deadline) {
			t.Fatal("endpoint never re-logged-in")
		}
		f.sim.Advance(DefaultRetryPeriod)
		time.Sleep(time.Millisecond)
	}
}

func TestDirectIMSurvivesOutage(t *testing.T) {
	f := newEngineFixture(t)
	ep, _ := f.addUserEndpoint(t, "bob", 0, false)
	f.imSvc.Outage().Set(true, f.sim.Now())
	f.imSvc.ForceLogoutAll()
	f.sim.Advance(3 * DefaultRetryPeriod)
	if ep.LoggedIn() {
		t.Fatal("logged in during outage")
	}
	f.imSvc.Outage().Set(false, f.sim.Now())
	deadline := time.Now().Add(5 * time.Second)
	for !ep.LoggedIn() {
		if time.Now().After(deadline) {
			t.Fatal("endpoint never recovered from outage")
		}
		f.sim.Advance(DefaultRetryPeriod)
		time.Sleep(time.Millisecond)
	}
}

func TestDirectEmailValidation(t *testing.T) {
	f := newEngineFixture(t)
	if _, err := NewDirectEmail(nil, "x"); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := NewDirectEmail(f.emSvc, ""); err == nil {
		t.Fatal("empty from accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
