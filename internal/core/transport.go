package core

import (
	"errors"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/email"
	"simba/internal/im"
)

// DefaultRetryPeriod is how often DirectIM verifies its login.
const DefaultRetryPeriod = 5 * time.Second

// DirectIM is a lightweight IM endpoint for alert sources that do not
// drive GUI client software: it logs in, keeps itself logged in, pumps
// received messages to a handler, and satisfies IMSender. MyAlertBuddy
// does NOT use this — it drives real client software through
// commgr.IMManager; DirectIM models the server-side daemons (alert
// proxy, Aladdin gateway, WISH server) that link the SIMBA library
// directly.
type DirectIM struct {
	clk       clock.Clock
	svc       *im.Service
	handle    string
	retry     time.Duration
	onMessage func(im.Message)

	mu   sync.Mutex
	sess *im.Session
	stop chan struct{}
}

var _ IMSender = (*DirectIM)(nil)

// NewDirectIM builds an endpoint for handle (which must be registered
// with the service). onMessage receives every inbound IM; it may be
// nil for send-only endpoints, but then acknowledgements cannot be
// received — wire onMessage to Engine.HandleIncoming.
func NewDirectIM(clk clock.Clock, svc *im.Service, handle string, onMessage func(im.Message)) (*DirectIM, error) {
	if clk == nil || svc == nil {
		return nil, errors.New("core: DirectIM requires clock and service")
	}
	if handle == "" {
		return nil, errors.New("core: DirectIM requires handle")
	}
	return &DirectIM{
		clk:       clk,
		svc:       svc,
		handle:    handle,
		retry:     DefaultRetryPeriod,
		onMessage: onMessage,
	}, nil
}

// Handle returns the endpoint's IM handle.
func (d *DirectIM) Handle() string { return d.handle }

// SetOnMessage replaces the inbound-message handler — used when the
// handler needs to reference an Engine built after the endpoint (e.g.
// wiring acknowledgements via Engine.HandleIncoming). Call it before
// Start.
func (d *DirectIM) SetOnMessage(fn func(im.Message)) {
	d.mu.Lock()
	d.onMessage = fn
	d.mu.Unlock()
}

// Start logs in (tolerating an initial outage) and starts the pump and
// keep-alive loop.
func (d *DirectIM) Start() error {
	d.mu.Lock()
	if d.stop != nil {
		d.mu.Unlock()
		return nil
	}
	stop := make(chan struct{})
	d.stop = stop
	d.mu.Unlock()
	d.relogin() // best effort; keep-alive retries on failure
	go d.run(stop)
	return nil
}

// Stop ends the pump and logs out.
func (d *DirectIM) Stop() {
	d.mu.Lock()
	if d.stop != nil {
		close(d.stop)
		d.stop = nil
	}
	sess := d.sess
	d.sess = nil
	d.mu.Unlock()
	if sess != nil {
		sess.Logout()
	}
}

// LoggedIn reports whether the endpoint currently holds a live session.
func (d *DirectIM) LoggedIn() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sess != nil && d.sess.LoggedIn()
}

// Send implements IMSender.
func (d *DirectIM) Send(to, text string) (uint64, error) {
	d.mu.Lock()
	sess := d.sess
	d.mu.Unlock()
	if sess == nil || !sess.LoggedIn() {
		return 0, im.ErrNotLoggedIn
	}
	return sess.Send(to, text)
}

// relogin attempts a login and swaps the session, reporting success.
func (d *DirectIM) relogin() bool {
	sess, err := d.svc.Login(d.handle)
	if err != nil {
		return false
	}
	d.mu.Lock()
	d.sess = sess
	d.mu.Unlock()
	return true
}

// run pumps inbound messages and re-logs-in whenever the session dies.
func (d *DirectIM) run(stop chan struct{}) {
	ticker := d.clk.NewTicker(d.retry)
	defer ticker.Stop()
	for {
		d.mu.Lock()
		sess := d.sess
		d.mu.Unlock()
		var inbox <-chan im.Message
		if sess != nil {
			inbox = sess.Inbox()
		}
		select {
		case <-stop:
			return
		case msg := <-inbox:
			d.mu.Lock()
			handler := d.onMessage
			d.mu.Unlock()
			if handler != nil {
				handler(msg)
			}
		case <-ticker.C():
			if sess == nil || !sess.LoggedIn() {
				d.relogin()
			}
		}
	}
}

// DirectEmail satisfies EmailSender by submitting straight to the
// email service with a fixed From address.
type DirectEmail struct {
	svc  *email.Service
	from string
}

var _ EmailSender = (*DirectEmail)(nil)

// NewDirectEmail builds a sender submitting as from.
func NewDirectEmail(svc *email.Service, from string) (*DirectEmail, error) {
	if svc == nil {
		return nil, errors.New("core: DirectEmail requires service")
	}
	if from == "" {
		return nil, errors.New("core: DirectEmail requires from address")
	}
	return &DirectEmail{svc: svc, from: from}, nil
}

// Send implements EmailSender.
func (d *DirectEmail) Send(to, subject, body string) error {
	return d.svc.Submit(d.from, to, subject, body)
}
