package core

// Tier is the delivery quality-of-service contract attached to a
// subscription. The paper's buddy treats every alert identically:
// retries are in-memory only, so a crash mid-backoff or an exhausted
// attempt budget loses the alert permanently. Splitting subscriptions
// into guaranteed and best-effort (the orca ADR's essential vs
// best-effort notification split) lets the hosting layer spend
// durability only where the user asked for it:
//
//   - TierBestEffort keeps the historical semantics: a fixed in-memory
//     attempt budget, then the alert is dropped — but the drop is now
//     counted, never silent.
//   - TierGuaranteed never drops on attempt exhaustion: the delivery
//     state is persisted to a WAL-backed outbox that survives process
//     restarts and redelivers with escalating backoff, eventually
//     escalating to the mode's backup channels (the paper's block
//     fallback generalized across restarts). Duplicates introduced by
//     redelivery are covered by the timestamp dedup contract, giving
//     at-least-once-with-dedup delivery.
//
// The zero value is TierBestEffort, so existing subscriptions keep
// their semantics unchanged.
type Tier uint8

// Delivery QoS tiers.
const (
	// TierBestEffort drops the alert after the in-memory attempt
	// budget, counting the loss.
	TierBestEffort Tier = iota
	// TierGuaranteed persists exhausted deliveries to the retry outbox
	// and redelivers until confirmed.
	TierGuaranteed
)

// NumTiers is the number of defined tiers, for per-tier counter arrays.
const NumTiers = 2

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierBestEffort:
		return "best-effort"
	case TierGuaranteed:
		return "guaranteed"
	default:
		return "unknown"
	}
}

// Valid reports whether t is a defined tier.
func (t Tier) Valid() bool { return t < NumTiers }
