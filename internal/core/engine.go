package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dmode"
	"simba/internal/im"
)

// Delivery errors.
var (
	// ErrNoChannel indicates no channel is registered for an action's
	// communication type.
	ErrNoChannel = errors.New("core: no sender configured for channel")
	// ErrUnknownAddress indicates an action references a friendly name
	// absent from the user's registry.
	ErrUnknownAddress = errors.New("core: action references unknown address")
	// ErrAddressDisabled indicates the referenced address is disabled.
	ErrAddressDisabled = errors.New("core: address disabled")
	// ErrAllBlocksFailed indicates every communication block failed.
	ErrAllBlocksFailed = errors.New("core: all delivery blocks failed")
)

// IMSender transmits instant messages. Both commgr.IMManager and the
// lightweight DirectIM adapter satisfy it.
type IMSender interface {
	// Send transmits text and returns the IM message sequence number.
	Send(to, text string) (uint64, error)
}

// EmailSender submits email. Both commgr.EmailManager and the
// DirectEmail adapter satisfy it.
type EmailSender interface {
	Send(to, subject, body string) error
}

// ackPrefix tags application-level acknowledgement IMs; per the paper,
// acks are tagged with the IM message sequence numbers.
const ackPrefix = "SIMBA-ACK "

// AckText builds the acknowledgement text for a received IM alert.
func AckText(seq uint64) string {
	return ackPrefix + strconv.FormatUint(seq, 10)
}

// ParseAck reports whether text is an acknowledgement and, if so, the
// acknowledged sequence number.
func ParseAck(text string) (uint64, bool) {
	rest, ok := strings.CutPrefix(text, ackPrefix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ActionResult records one action's outcome.
type ActionResult struct {
	// AddressName is the friendly name the action referenced.
	AddressName string
	// Type is the communication type actually used (zero if unknown).
	Type addr.Type
	// Target is the network address used.
	Target string
	// Seq is the channel message sequence number (ack-based channels
	// only).
	Seq uint64
	// Confirmed reports that the channel confirmed delivery at send
	// time (fire-and-forget channels).
	Confirmed bool
	// Err is the send or confirmation error, nil on success.
	Err error
	// AckedAt is when the acknowledgement arrived (ack-based channels
	// only).
	AckedAt time.Time
}

// BlockResult records one communication block's outcome.
type BlockResult struct {
	Index     int
	Actions   []ActionResult
	Succeeded bool
	Elapsed   time.Duration
}

// ActionError is one action failure in debuggable form: which block,
// which address (friendly name, channel type, network target), and the
// error text. It lets block-fallback causes be reconstructed from logs
// instead of only ErrAllBlocksFailed.
type ActionError struct {
	Block       int
	AddressName string
	Type        addr.Type
	Target      string
	Err         string
}

// String renders the failure as "block 0 IM Pager(alice@im): refused".
func (e ActionError) String() string {
	t := string(e.Type)
	if t == "" {
		t = "?"
	}
	return fmt.Sprintf("block %d %s %s(%s): %s", e.Block, t, e.AddressName, e.Target, e.Err)
}

// Report summarizes one delivery-mode execution.
type Report struct {
	AlertKey  string
	ModeName  string
	Blocks    []BlockResult
	Delivered bool
	// DeliveredVia is the friendly name of the address that confirmed
	// delivery ("" when not delivered).
	DeliveredVia string
	StartedAt    time.Time
	FinishedAt   time.Time
}

// Latency returns the total delivery time.
func (r *Report) Latency() time.Duration { return r.FinishedAt.Sub(r.StartedAt) }

// ActionErrors collects every failed action across all executed
// blocks, in execution order.
func (r *Report) ActionErrors() []ActionError {
	var out []ActionError
	for _, b := range r.Blocks {
		for _, a := range b.Actions {
			if a.Err == nil {
				continue
			}
			out = append(out, ActionError{
				Block:       b.Index,
				AddressName: a.AddressName,
				Type:        a.Type,
				Target:      a.Target,
				Err:         a.Err.Error(),
			})
		}
	}
	return out
}

// FailureSummary renders every action failure on one line, for
// embedding in delivery errors and logs.
func (r *Report) FailureSummary() string {
	errs := r.ActionErrors()
	if len(errs) == 0 {
		return "no action failures recorded"
	}
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// DeliveredType returns the communication type of the address that
// confirmed delivery ("" when not delivered).
func (r *Report) DeliveredType() addr.Type {
	if !r.Delivered || r.DeliveredVia == "" {
		return ""
	}
	for _, b := range r.Blocks {
		if !b.Succeeded {
			continue
		}
		for _, a := range b.Actions {
			if a.AddressName == r.DeliveredVia {
				return a.Type
			}
		}
	}
	return ""
}

// Engine is the buddy-side delivery shell: an Executor over the
// classic IM + email sender pair plus the acknowledgement tracking the
// buddy's receive loop feeds. It is kept for the personal
// (one-user-per-process) path; shared substrates like the hub use an
// Executor with their own channel registry directly. It is safe for
// concurrent use; any number of Deliver calls may be in flight.
type Engine struct {
	exec *Executor
}

// NewEngine builds a delivery engine. Either sender may be nil when
// the caller has no channel of that type; actions needing it fail with
// ErrNoChannel. SMS actions ride the carrier's email gateway (the
// paper's original wiring); callers wanting direct carrier submission
// register NewSMSChannel on Channels.
func NewEngine(clk clock.Clock, imSender IMSender, emailSender EmailSender) (*Engine, error) {
	if clk == nil {
		return nil, errors.New("core: clock is required")
	}
	channels := NewChannels()
	if imSender != nil {
		channels.Register(addr.TypeIM, NewIMChannel(imSender))
	}
	if emailSender != nil {
		email := NewEmailChannel(emailSender)
		channels.Register(addr.TypeEmail, email)
		channels.Register(addr.TypeSMS, email)
	}
	exec, err := NewExecutor(clk, channels, nil)
	if err != nil {
		return nil, err
	}
	return &Engine{exec: exec}, nil
}

// Executor returns the engine's underlying mode executor, for callers
// that deliver with an explicit DeliveryContext or share the executor
// across components.
func (e *Engine) Executor() *Executor { return e.exec }

// Channels returns the engine's channel registry, so additional
// channel types (e.g. direct-carrier SMS) can be plugged in.
func (e *Engine) Channels() *Channels { return e.exec.Channels() }

// HandleIncoming inspects an incoming IM. If it is an acknowledgement
// for a pending IM action, the ack is resolved and HandleIncoming
// reports true (the message is consumed). All other messages report
// false and should be processed by the caller.
func (e *Engine) HandleIncoming(msg im.Message) bool {
	return e.exec.Acks().HandleIncoming(msg)
}

// PendingAcks reports how many IM acknowledgements are outstanding.
func (e *Engine) PendingAcks() int { return e.exec.Acks().Pending() }

// Deliver executes the delivery mode for one alert against the user's
// address registry, trying blocks in order until one succeeds. It
// blocks for up to the sum of the blocks' timeouts (only blocks that
// must wait for an acknowledgement consume their timeout).
func (e *Engine) Deliver(a *alert.Alert, reg *addr.Registry, mode *dmode.Mode) (*Report, error) {
	return e.exec.Deliver(a, reg, mode)
}
