package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dmode"
	"simba/internal/im"
)

// Engine errors.
var (
	// ErrNoChannel indicates the engine has no sender for an action's
	// communication type.
	ErrNoChannel = errors.New("core: no sender configured for channel")
	// ErrUnknownAddress indicates an action references a friendly name
	// absent from the user's registry.
	ErrUnknownAddress = errors.New("core: action references unknown address")
	// ErrAddressDisabled indicates the referenced address is disabled.
	ErrAddressDisabled = errors.New("core: address disabled")
	// ErrAllBlocksFailed indicates every communication block failed.
	ErrAllBlocksFailed = errors.New("core: all delivery blocks failed")
)

// IMSender transmits instant messages. Both commgr.IMManager and the
// lightweight DirectIM adapter satisfy it.
type IMSender interface {
	// Send transmits text and returns the IM message sequence number.
	Send(to, text string) (uint64, error)
}

// EmailSender submits email. Both commgr.EmailManager and the
// DirectEmail adapter satisfy it.
type EmailSender interface {
	Send(to, subject, body string) error
}

// ackPrefix tags application-level acknowledgement IMs; per the paper,
// acks are tagged with the IM message sequence numbers.
const ackPrefix = "SIMBA-ACK "

// AckText builds the acknowledgement text for a received IM alert.
func AckText(seq uint64) string {
	return ackPrefix + strconv.FormatUint(seq, 10)
}

// ParseAck reports whether text is an acknowledgement and, if so, the
// acknowledged sequence number.
func ParseAck(text string) (uint64, bool) {
	rest, ok := strings.CutPrefix(text, ackPrefix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ActionResult records one action's outcome.
type ActionResult struct {
	// AddressName is the friendly name the action referenced.
	AddressName string
	// Type is the communication type actually used (zero if unknown).
	Type addr.Type
	// Target is the network address used.
	Target string
	// Seq is the IM sequence number (IM actions only).
	Seq uint64
	// Err is the send or confirmation error, nil on success.
	Err error
	// AckedAt is when the IM acknowledgement arrived (IM actions only).
	AckedAt time.Time
}

// BlockResult records one communication block's outcome.
type BlockResult struct {
	Index     int
	Actions   []ActionResult
	Succeeded bool
	Elapsed   time.Duration
}

// Report summarizes one delivery-mode execution.
type Report struct {
	AlertKey  string
	ModeName  string
	Blocks    []BlockResult
	Delivered bool
	// DeliveredVia is the friendly name of the address that confirmed
	// delivery ("" when not delivered).
	DeliveredVia string
	StartedAt    time.Time
	FinishedAt   time.Time
}

// Latency returns the total delivery time.
func (r *Report) Latency() time.Duration { return r.FinishedAt.Sub(r.StartedAt) }

// Engine executes delivery modes. It is safe for concurrent use; any
// number of Deliver calls may be in flight.
type Engine struct {
	clk   clock.Clock
	im    IMSender
	email EmailSender

	mu      sync.Mutex
	pending map[ackKey]*pendingAck
}

type ackKey struct {
	handle string
	seq    uint64
}

type pendingAck struct {
	ch   chan ackArrival
	name string // friendly address name
}

type ackArrival struct {
	name string
	at   time.Time
}

// NewEngine builds a delivery engine. Either sender may be nil when
// the caller has no channel of that type; actions needing it fail with
// ErrNoChannel.
func NewEngine(clk clock.Clock, imSender IMSender, emailSender EmailSender) (*Engine, error) {
	if clk == nil {
		return nil, errors.New("core: clock is required")
	}
	return &Engine{
		clk:     clk,
		im:      imSender,
		email:   emailSender,
		pending: make(map[ackKey]*pendingAck),
	}, nil
}

// HandleIncoming inspects an incoming IM. If it is an acknowledgement
// for a pending IM action, the ack is resolved and HandleIncoming
// reports true (the message is consumed). All other messages report
// false and should be processed by the caller.
func (e *Engine) HandleIncoming(msg im.Message) bool {
	seq, ok := ParseAck(msg.Text)
	if !ok {
		return false
	}
	key := ackKey{handle: msg.From, seq: seq}
	e.mu.Lock()
	p, ok := e.pending[key]
	if ok {
		delete(e.pending, key)
	}
	e.mu.Unlock()
	if ok {
		select {
		case p.ch <- ackArrival{name: p.name, at: e.clk.Now()}:
		default:
		}
	}
	return true // consume stray acks too
}

// PendingAcks reports how many IM acknowledgements are outstanding.
func (e *Engine) PendingAcks() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// Deliver executes the delivery mode for one alert against the user's
// address registry, trying blocks in order until one succeeds. It
// blocks for up to the sum of the blocks' timeouts (only blocks that
// must wait for an IM acknowledgement consume their timeout).
func (e *Engine) Deliver(a *alert.Alert, reg *addr.Registry, mode *dmode.Mode) (*Report, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	payload, err := a.MarshalText()
	if err != nil {
		return nil, err
	}
	report := &Report{
		AlertKey:  a.DedupKey(),
		ModeName:  mode.Name,
		StartedAt: e.clk.Now(),
	}
	for i := range mode.Blocks {
		br := e.runBlock(i, &mode.Blocks[i], reg, a, payload)
		report.Blocks = append(report.Blocks, br)
		if br.Succeeded {
			report.Delivered = true
			report.DeliveredVia = deliveredVia(br)
			break
		}
	}
	report.FinishedAt = e.clk.Now()
	if !report.Delivered {
		return report, fmt.Errorf("core: alert %s mode %s: %w", a.ID, mode.Name, ErrAllBlocksFailed)
	}
	return report, nil
}

// runBlock performs all enabled actions of one block and decides its
// outcome: immediate success if any fire-and-forget action was
// accepted, else success iff an IM acknowledgement arrives within the
// block timeout.
func (e *Engine) runBlock(index int, b *dmode.Block, reg *addr.Registry, a *alert.Alert, payload []byte) BlockResult {
	start := e.clk.Now()
	br := BlockResult{Index: index}
	ackCh := make(chan ackArrival, len(b.Actions))
	var keys []ackKey
	immediate := "" // friendly name of a fire-and-forget success

	for _, action := range b.Actions {
		res := ActionResult{AddressName: action.Address}
		address, ok := reg.Lookup(action.Address)
		switch {
		case !ok:
			res.Err = fmt.Errorf("%q: %w", action.Address, ErrUnknownAddress)
		case !address.Enabled:
			res.Type, res.Target = address.Type, address.Target
			res.Err = fmt.Errorf("%q: %w", action.Address, ErrAddressDisabled)
		default:
			res.Type, res.Target = address.Type, address.Target
			switch address.Type {
			case addr.TypeIM:
				if e.im == nil {
					res.Err = fmt.Errorf("IM: %w", ErrNoChannel)
					break
				}
				seq, err := e.im.Send(address.Target, string(payload))
				if err != nil {
					res.Err = err
					break
				}
				res.Seq = seq
				key := ackKey{handle: address.Target, seq: seq}
				e.mu.Lock()
				e.pending[key] = &pendingAck{ch: ackCh, name: address.Name}
				e.mu.Unlock()
				keys = append(keys, key)
			case addr.TypeEmail, addr.TypeSMS:
				// SMS rides the carrier's email gateway, so both types
				// are email submissions; accept == confirmed.
				if e.email == nil {
					res.Err = fmt.Errorf("%s: %w", address.Type, ErrNoChannel)
					break
				}
				if err := e.email.Send(address.Target, a.Subject, string(payload)); err != nil {
					res.Err = err
					break
				}
				if immediate == "" {
					immediate = address.Name
				}
			default:
				res.Err = fmt.Errorf("type %q: %w", address.Type, ErrNoChannel)
			}
		}
		br.Actions = append(br.Actions, res)
	}

	switch {
	case immediate != "":
		br.Succeeded = true
	case len(keys) > 0:
		timer := e.clk.NewTimer(b.EffectiveTimeout())
		select {
		case arr := <-ackCh:
			timer.Stop()
			br.Succeeded = true
			for i := range br.Actions {
				if br.Actions[i].AddressName == arr.name && br.Actions[i].Err == nil {
					br.Actions[i].AckedAt = arr.at
				}
			}
		case <-timer.C():
			for i := range br.Actions {
				if br.Actions[i].Err == nil && br.Actions[i].Type == addr.TypeIM {
					br.Actions[i].Err = fmt.Errorf("no acknowledgement within %v", b.EffectiveTimeout())
				}
			}
		}
	}
	// Unregister any acks still pending for this block.
	e.mu.Lock()
	for _, k := range keys {
		if p, ok := e.pending[k]; ok && p.ch == ackCh {
			delete(e.pending, k)
		}
	}
	e.mu.Unlock()
	br.Elapsed = e.clk.Now().Sub(start)
	return br
}

// deliveredVia picks the confirming address name from a succeeded
// block: an acked IM action first, else the first fire-and-forget
// success.
func deliveredVia(br BlockResult) string {
	for _, res := range br.Actions {
		if !res.AckedAt.IsZero() {
			return res.AddressName
		}
	}
	for _, res := range br.Actions {
		if res.Err == nil && (res.Type == addr.TypeEmail || res.Type == addr.TypeSMS) {
			return res.AddressName
		}
	}
	return ""
}
