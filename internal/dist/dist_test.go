package dist

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRNGReproducible(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	if g.Bool(0) {
		t.Fatal("Bool(0) = true")
	}
	if !g.Bool(1) {
		t.Fatal("Bool(1) = false")
	}
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestFixed(t *testing.T) {
	g := NewRNG(1)
	if got := Fixed(3 * time.Second).Sample(g); got != 3*time.Second {
		t.Fatalf("Fixed sample = %v", got)
	}
	if got := Fixed(-time.Second).Sample(g); got != 0 {
		t.Fatalf("negative Fixed sample = %v, want 0", got)
	}
}

func TestUniformWithinBounds(t *testing.T) {
	g := NewRNG(7)
	u := Uniform{Min: time.Second, Max: 5 * time.Second}
	for i := 0; i < 1000; i++ {
		got := u.Sample(g)
		if got < u.Min || got > u.Max {
			t.Fatalf("uniform sample %v outside [%v, %v]", got, u.Min, u.Max)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	g := NewRNG(7)
	u := Uniform{Min: 2 * time.Second, Max: time.Second}
	if got := u.Sample(g); got != 2*time.Second {
		t.Fatalf("degenerate uniform = %v", got)
	}
}

func TestNormalRespectsFloor(t *testing.T) {
	g := NewRNG(3)
	n := Normal{Mean: time.Second, Stddev: 10 * time.Second, Floor: 200 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if got := n.Sample(g); got < n.Floor {
			t.Fatalf("normal sample %v below floor", got)
		}
	}
}

func TestNormalMeanApproximate(t *testing.T) {
	g := NewRNG(11)
	n := Normal{Mean: 10 * time.Second, Stddev: time.Second}
	var sum time.Duration
	const count = 5000
	for i := 0; i < count; i++ {
		sum += n.Sample(g)
	}
	mean := sum / count
	if mean < 9500*time.Millisecond || mean > 10500*time.Millisecond {
		t.Fatalf("empirical mean %v too far from 10s", mean)
	}
}

func TestExponentialBaseAndMean(t *testing.T) {
	g := NewRNG(5)
	e := Exponential{Mean: 2 * time.Second, Base: time.Second}
	var sum time.Duration
	const count = 5000
	for i := 0; i < count; i++ {
		s := e.Sample(g)
		if s < e.Base {
			t.Fatalf("sample %v below base", s)
		}
		sum += s
	}
	mean := sum / count
	if mean < 2700*time.Millisecond || mean > 3300*time.Millisecond {
		t.Fatalf("empirical mean %v, want ~3s", mean)
	}
}

func TestLogNormalHeavyTail(t *testing.T) {
	g := NewRNG(9)
	// Median exp(mu) = ~8s, sigma 2 → long tail.
	l := LogNormal{Mu: 2.1, Sigma: 2}
	fast, slow := 0, 0
	for i := 0; i < 5000; i++ {
		s := l.Sample(g)
		if s < time.Minute {
			fast++
		}
		if s > time.Hour {
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("lognormal lacks spread: fast=%d slow=%d", fast, slow)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := NewMixture(Component{Weight: -1, Dist: Fixed(0)}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewMixture(Component{Weight: 1, Dist: nil}); err == nil {
		t.Fatal("nil dist accepted")
	}
	if _, err := NewMixture(Component{Weight: 0, Dist: Fixed(0)}); err == nil {
		t.Fatal("zero total weight accepted")
	}
}

func TestMixturePicksBothArms(t *testing.T) {
	g := NewRNG(13)
	m, err := NewMixture(
		Component{Weight: 0.9, Dist: Fixed(time.Second)},
		Component{Weight: 0.1, Dist: Fixed(time.Hour)},
	)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for i := 0; i < 2000; i++ {
		switch m.Sample(g) {
		case time.Second:
			fast++
		case time.Hour:
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("mixture did not use both arms: fast=%d slow=%d", fast, slow)
	}
	ratio := float64(slow) / 2000
	if ratio < 0.05 || ratio > 0.2 {
		t.Fatalf("slow arm frequency %v, want ~0.1", ratio)
	}
}

func TestAllDistsNonNegativeProperty(t *testing.T) {
	g := NewRNG(99)
	mix, _ := NewMixture(
		Component{Weight: 1, Dist: Normal{Mean: -time.Second, Stddev: time.Second}},
		Component{Weight: 1, Dist: Uniform{Min: -time.Second, Max: time.Second}},
	)
	dists := []Dist{
		Fixed(-5 * time.Second),
		Uniform{Min: -2 * time.Second, Max: time.Second},
		Normal{Mean: 0, Stddev: 5 * time.Second},
		Exponential{Mean: time.Second},
		LogNormal{Mu: 0, Sigma: 3},
		mix,
	}
	f := func(pick uint8) bool {
		d := dists[int(pick)%len(dists)]
		return d.Sample(g) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := NewRNG(42).Fork("shard-3")
	b := NewRNG(42).Fork("shard-3")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, label) fork diverged")
		}
	}
}

func TestForkIndependentOfParentPosition(t *testing.T) {
	p1 := NewRNG(7)
	p2 := NewRNG(7)
	for i := 0; i < 50; i++ {
		p2.Float64() // advance one parent; forks must not care
	}
	a, b := p1.Fork("x"), p2.Fork("x")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("fork stream depends on parent draw position")
		}
	}
}

func TestForkLabelsDiverge(t *testing.T) {
	p := NewRNG(9)
	a, b := p.Fork("shard-0"), p.Fork("shard-1")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different labels produced %d/100 identical draws", same)
	}
}

func TestForkConcurrent(t *testing.T) {
	p := NewRNG(1)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			g := p.Fork(string(rune('a' + i)))
			for j := 0; j < 1000; j++ {
				g.Float64()
				p.Float64()
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
