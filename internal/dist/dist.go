// Package dist provides seeded random delay distributions used by the
// simulated communication substrates. The paper characterizes email and
// SMS latency as "unpredictable ... ranging from seconds to days"; the
// heavy-tailed distributions here reproduce that contract, while IM
// hops use tight distributions around a few hundred milliseconds.
package dist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"
)

// RNG is a concurrency-safe source of randomness with a fixed seed, so
// every experiment is reproducible.
type RNG struct {
	mu   sync.Mutex
	seed int64
	r    *rand.Rand
}

// NewRNG returns a seeded RNG.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Fork returns a child RNG seeded deterministically from the parent's
// seed and label. The child's stream depends only on (seed, label) —
// not on how many draws the parent or any sibling has made — so
// parallel consumers (e.g. hub shards) each fork their own RNG instead
// of serializing on one shared mutex, and runs stay reproducible.
func (g *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.seed))
	h.Write(buf[:])
	h.Write([]byte(label))
	return NewRNG(int64(h.Sum64()))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

// NormFloat64 returns a standard-normal value.
func (g *RNG) NormFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.NormFloat64()
}

// ExpFloat64 returns an exponential value with mean 1.
func (g *RNG) ExpFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.ExpFloat64()
}

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.Float64() < p
}

// Dist produces random durations.
type Dist interface {
	// Sample draws one duration. Implementations never return a
	// negative duration.
	Sample(g *RNG) time.Duration
}

// Fixed always returns the same duration.
type Fixed time.Duration

var _ Dist = Fixed(0)

// Sample implements Dist.
func (f Fixed) Sample(*RNG) time.Duration { return clampNonNegative(time.Duration(f)) }

// Uniform samples uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

var _ Dist = Uniform{}

// Sample implements Dist.
func (u Uniform) Sample(g *RNG) time.Duration {
	if u.Max <= u.Min {
		return clampNonNegative(u.Min)
	}
	span := float64(u.Max - u.Min)
	return clampNonNegative(u.Min + time.Duration(g.Float64()*span))
}

// Normal samples from a normal distribution truncated at Floor.
type Normal struct {
	Mean, Stddev time.Duration
	// Floor is the minimum returned value (defaults to 0).
	Floor time.Duration
}

var _ Dist = Normal{}

// Sample implements Dist.
func (n Normal) Sample(g *RNG) time.Duration {
	v := time.Duration(float64(n.Mean) + g.NormFloat64()*float64(n.Stddev))
	if v < n.Floor {
		v = n.Floor
	}
	return clampNonNegative(v)
}

// Exponential samples from an exponential distribution with the given
// mean, shifted by Base.
type Exponential struct {
	Mean time.Duration
	Base time.Duration
}

var _ Dist = Exponential{}

// Sample implements Dist.
func (e Exponential) Sample(g *RNG) time.Duration {
	return clampNonNegative(e.Base + time.Duration(g.ExpFloat64()*float64(e.Mean)))
}

// LogNormal samples exp(N(Mu, Sigma)) seconds. It models heavy-tailed
// store-and-forward delays (email, SMS) where most messages arrive in
// seconds but a tail takes hours or days.
type LogNormal struct {
	// Mu and Sigma parameterize the underlying normal in log-seconds.
	Mu, Sigma float64
}

var _ Dist = LogNormal{}

// Sample implements Dist.
func (l LogNormal) Sample(g *RNG) time.Duration {
	secs := math.Exp(l.Mu + l.Sigma*g.NormFloat64())
	return clampNonNegative(time.Duration(secs * float64(time.Second)))
}

// Mixture samples from one of several distributions with the given
// weights. Use it to model "usually fast, occasionally very slow".
type Mixture struct {
	Components []Component
}

// Component is one arm of a Mixture.
type Component struct {
	Weight float64
	Dist   Dist
}

var _ Dist = Mixture{}

// NewMixture builds a mixture and validates weights.
func NewMixture(components ...Component) (Mixture, error) {
	if len(components) == 0 {
		return Mixture{}, fmt.Errorf("dist: mixture needs at least one component")
	}
	total := 0.0
	for _, c := range components {
		if c.Weight < 0 {
			return Mixture{}, fmt.Errorf("dist: negative mixture weight %v", c.Weight)
		}
		if c.Dist == nil {
			return Mixture{}, fmt.Errorf("dist: nil mixture component")
		}
		total += c.Weight
	}
	if total <= 0 {
		return Mixture{}, fmt.Errorf("dist: mixture weights sum to %v", total)
	}
	return Mixture{Components: components}, nil
}

// Sample implements Dist.
func (m Mixture) Sample(g *RNG) time.Duration {
	if len(m.Components) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range m.Components {
		total += c.Weight
	}
	pick := g.Float64() * total
	for _, c := range m.Components {
		pick -= c.Weight
		if pick < 0 {
			return c.Dist.Sample(g)
		}
	}
	return m.Components[len(m.Components)-1].Dist.Sample(g)
}

func clampNonNegative(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}
