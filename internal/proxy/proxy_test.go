package proxy

import (
	"sync"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
	"simba/internal/websim"
)

func TestExtractBlock(t *testing.T) {
	tests := []struct {
		content, start, end string
		want                string
		ok                  bool
	}{
		{"aaa<begin>inner<end>bbb", "<begin>", "<end>", "inner", true},
		{"head tail", "", "", "head tail", true},
		{"head STOP tail", "", " STOP", "head", true},
		{"lead START rest", "START ", "", "rest", true},
		{"no markers", "<begin>", "<end>", "", false},
		{"<begin>unterminated", "<begin>", "<end>", "", false},
		{"x<b>first<e>y<b>second<e>", "<b>", "<e>", "first", true},
	}
	for _, tt := range tests {
		got, ok := ExtractBlock(tt.content, tt.start, tt.end)
		if got != tt.want || ok != tt.ok {
			t.Fatalf("ExtractBlock(%q, %q, %q) = %q, %v; want %q, %v",
				tt.content, tt.start, tt.end, got, ok, tt.want, tt.ok)
		}
	}
}

// fixture delivers proxy alerts into a collector mailbox via an
// email-only target.
type fixture struct {
	t     *testing.T
	sim   *clock.Sim
	web   *websim.Web
	site  *websim.Site
	prox  *Proxy
	inbox *email.Mailbox

	mu      sync.Mutex
	reports []*core.Report
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	web, err := websim.New(sim, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	site, err := web.CreateSite("cnn")
	if err != nil {
		t.Fatal(err)
	}
	emSvc, err := email.NewService(email.Config{Clock: sim, RNG: dist.NewRNG(1), Delay: dist.Fixed(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := emSvc.CreateMailbox("collector@sim")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := core.NewDirectEmail(emSvc, "proxy@sim")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(sim, nil, sender)
	if err != nil {
		t.Fatal(err)
	}
	reg := addr.NewRegistry("collector")
	if err := reg.Register(addr.Address{Type: addr.TypeEmail, Name: "inbox", Target: "collector@sim", Enabled: true}); err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{Name: "email", Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: "inbox"}}}}}
	target, err := core.NewTarget(engine, reg, mode)
	if err != nil {
		t.Fatal(err)
	}
	prox, err := New(sim, web, target)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, sim: sim, web: web, site: site, prox: prox, inbox: inbox}
	prox.OnReport = func(m Monitor, rep *core.Report, err error) {
		f.mu.Lock()
		f.reports = append(f.reports, rep)
		f.mu.Unlock()
	}
	t.Cleanup(prox.Stop)
	return f
}

func (f *fixture) advance(total, step time.Duration) {
	f.t.Helper()
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		f.sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func (f *fixture) receivedAlerts() []alert.Alert {
	f.t.Helper()
	var out []alert.Alert
	for _, msg := range f.inbox.Fetch() {
		var a alert.Alert
		if err := a.UnmarshalText([]byte(msg.Body)); err != nil {
			f.t.Fatalf("collector got non-alert mail: %v", err)
		}
		out = append(out, a)
	}
	return out
}

func electionMonitor() Monitor {
	return Monitor{
		Name:         "florida-recount",
		URL:          "cnn/election",
		PollEvery:    time.Second,
		StartKeyword: "[",
		EndKeyword:   "]",
		Source:       "alert-proxy",
		Keywords:     []string{"Election"},
		Urgency:      alert.UrgencyHigh,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestAddMonitorValidation(t *testing.T) {
	f := newFixture(t)
	bad := []Monitor{
		{},
		{Name: "x"},
		{Name: "x", URL: "u"},
		{Name: "x", URL: "u", PollEvery: time.Second},
	}
	for _, m := range bad {
		if err := f.prox.AddMonitor(m); err == nil {
			t.Fatalf("invalid monitor accepted: %+v", m)
		}
	}
	if err := f.prox.AddMonitor(electionMonitor()); err != nil {
		t.Fatal(err)
	}
}

func TestChangeDetectionAndAlert(t *testing.T) {
	f := newFixture(t)
	f.site.SetContent("election", "Results: [Gore 2000000, Bush 2000100] more", f.sim.Now())
	if err := f.prox.AddMonitor(electionMonitor()); err != nil {
		t.Fatal(err)
	}
	f.prox.Start()
	f.prox.Start() // idempotent

	// Baseline poll: no alert even after several polls.
	f.advance(5*time.Second, 500*time.Millisecond)
	if f.prox.AlertsSent() != 0 {
		t.Fatal("alert generated without a change")
	}
	// The recount updates.
	f.site.SetContent("election", "Results: [Gore 2000000, Bush 2000537] more", f.sim.Now())
	f.advance(5*time.Second, 500*time.Millisecond)
	if f.prox.AlertsSent() != 1 {
		t.Fatalf("AlertsSent = %d", f.prox.AlertsSent())
	}
	alerts := f.receivedAlerts()
	if len(alerts) != 1 {
		t.Fatalf("collector received %d alerts", len(alerts))
	}
	a := alerts[0]
	if a.Source != "alert-proxy" || a.Body != "Gore 2000000, Bush 2000537" || a.Urgency != alert.UrgencyHigh {
		t.Fatalf("alert = %+v", a)
	}
	// Change outside the block: no alert.
	f.site.SetContent("election", "Results: [Gore 2000000, Bush 2000537] other-noise", f.sim.Now())
	f.advance(5*time.Second, 500*time.Millisecond)
	if f.prox.AlertsSent() != 1 {
		t.Fatal("alert generated for out-of-block change")
	}
}

func TestSiteDowntimeTolerated(t *testing.T) {
	f := newFixture(t)
	f.site.SetContent("election", "[v1]", f.sim.Now())
	if err := f.prox.AddMonitor(electionMonitor()); err != nil {
		t.Fatal(err)
	}
	f.prox.Start()
	f.advance(3*time.Second, 500*time.Millisecond)
	f.site.Down().Set(true, f.sim.Now())
	f.advance(10*time.Second, time.Second)
	// Content changes while down.
	f.site.SetContent("election", "[v2]", f.sim.Now())
	f.site.Down().Set(false, f.sim.Now())
	f.advance(5*time.Second, 500*time.Millisecond)
	if f.prox.AlertsSent() != 1 {
		t.Fatalf("AlertsSent = %d, want change detected after recovery", f.prox.AlertsSent())
	}
}

func TestMonitorAddedAfterStart(t *testing.T) {
	f := newFixture(t)
	f.prox.Start()
	f.site.SetContent("election", "[v1]", f.sim.Now())
	if err := f.prox.AddMonitor(electionMonitor()); err != nil {
		t.Fatal(err)
	}
	f.advance(3*time.Second, 500*time.Millisecond)
	f.site.SetContent("election", "[v2]", f.sim.Now())
	f.advance(3*time.Second, 500*time.Millisecond)
	if f.prox.AlertsSent() != 1 {
		t.Fatalf("AlertsSent = %d", f.prox.AlertsSent())
	}
}

func TestUrgencyDefaultsToNormal(t *testing.T) {
	f := newFixture(t)
	m := electionMonitor()
	m.Urgency = 0
	f.site.SetContent("election", "[v1]", f.sim.Now())
	if err := f.prox.AddMonitor(m); err != nil {
		t.Fatal(err)
	}
	f.prox.Start()
	f.advance(3*time.Second, 500*time.Millisecond)
	f.site.SetContent("election", "[v2]", f.sim.Now())
	f.advance(3*time.Second, 500*time.Millisecond)
	alerts := f.receivedAlerts()
	if len(alerts) != 1 || alerts[0].Urgency != alert.UrgencyNormal {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestCommunityPhotoAlbumMonitor(t *testing.T) {
	// Section 2.2: a new photo added to the shared community album.
	f := newFixture(t)
	album, err := f.web.CreateSite("community")
	if err != nil {
		t.Fatal(err)
	}
	album.SetContent("album", "<photos>3 photos</photos>", f.sim.Now())
	if err := f.prox.AddMonitor(Monitor{
		Name: "family-album", URL: "community/album", PollEvery: 5 * time.Second,
		StartKeyword: "<photos>", EndKeyword: "</photos>",
		Source: "web-store", Keywords: []string{"Community"},
	}); err != nil {
		t.Fatal(err)
	}
	f.prox.Start()
	f.advance(12*time.Second, time.Second)
	album.SetContent("album", "<photos>4 photos</photos>", f.sim.Now())
	f.advance(12*time.Second, time.Second)
	alerts := f.receivedAlerts()
	if len(alerts) != 1 || alerts[0].Body != "4 photos" {
		t.Fatalf("alerts = %+v", alerts)
	}
}
