// Package proxy implements the SIMBA alert proxy of Section 2.1: for
// Web sites that provide interesting information but no alert service,
// the user specifies a URL, a polling frequency, and the starting and
// ending keywords enclosing the interesting block. The proxy polls,
// extracts the block, and generates an alert whenever it changes —
// this is the component the authors pointed at the Florida-recount and
// PlayStation2-availability pages. The same machinery monitors Web
// store / community content (Section 2.2), e.g. a shared photo album.
package proxy

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/websim"
)

// Monitor describes one watched page block.
type Monitor struct {
	// Name identifies the monitor and becomes part of alert IDs.
	Name string
	// URL is the websim "site/path" to poll.
	URL string
	// PollEvery is the polling frequency.
	PollEvery time.Duration
	// StartKeyword and EndKeyword enclose the interesting block. Empty
	// keywords select from the start / to the end of the page.
	StartKeyword, EndKeyword string
	// Source is the alert source name stamped on generated alerts
	// (what MyAlertBuddy's classifier matches).
	Source string
	// Keywords are the native category keywords for generated alerts.
	Keywords []string
	// Urgency of generated alerts (default normal).
	Urgency alert.Urgency
}

// validate checks the monitor definition.
func (m *Monitor) validate() error {
	switch {
	case m.Name == "":
		return errors.New("proxy: monitor requires Name")
	case m.URL == "":
		return errors.New("proxy: monitor requires URL")
	case m.PollEvery <= 0:
		return errors.New("proxy: monitor requires positive PollEvery")
	case m.Source == "":
		return errors.New("proxy: monitor requires Source")
	default:
		return nil
	}
}

// Proxy polls monitors and sends change alerts to a delivery target
// (the user's MyAlertBuddy).
type Proxy struct {
	clk    clock.Clock
	web    *websim.Web
	target *core.Target
	// OnReport observes every delivery attempt. Optional.
	OnReport func(m Monitor, rep *core.Report, err error)

	mu       sync.Mutex
	monitors []*monitorState
	stop     chan struct{}
	alerts   int
}

type monitorState struct {
	Monitor
	mu        sync.Mutex
	baseline  string
	havePrior bool
}

// New builds a proxy delivering through target.
func New(clk clock.Clock, web *websim.Web, target *core.Target) (*Proxy, error) {
	if clk == nil || web == nil || target == nil {
		return nil, errors.New("proxy: clock, web, and target are required")
	}
	return &Proxy{clk: clk, web: web, target: target}, nil
}

// AddMonitor registers a monitor. Monitors added after Start are
// picked up immediately.
func (p *Proxy) AddMonitor(m Monitor) error {
	if err := m.validate(); err != nil {
		return err
	}
	if m.Urgency == 0 {
		m.Urgency = alert.UrgencyNormal
	}
	st := &monitorState{Monitor: m}
	p.mu.Lock()
	running := p.stop
	p.monitors = append(p.monitors, st)
	p.mu.Unlock()
	if running != nil {
		go p.poll(st, running)
	}
	return nil
}

// AlertsSent returns how many change alerts the proxy has generated.
func (p *Proxy) AlertsSent() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alerts
}

// Start begins polling all monitors.
func (p *Proxy) Start() {
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	p.stop = stop
	monitors := append([]*monitorState(nil), p.monitors...)
	p.mu.Unlock()
	for _, st := range monitors {
		go p.poll(st, stop)
	}
}

// Stop halts polling.
func (p *Proxy) Stop() {
	p.mu.Lock()
	if p.stop != nil {
		close(p.stop)
		p.stop = nil
	}
	p.mu.Unlock()
}

// poll is the per-monitor loop: fetch, extract, compare, alert.
func (p *Proxy) poll(st *monitorState, stop chan struct{}) {
	ticker := p.clk.NewTicker(st.PollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C():
			p.pollOnce(st)
		}
	}
}

// pollOnce performs one poll cycle. Exported indirectly for tests via
// the tick path; fetch errors (site down) are skipped silently — the
// next successful poll re-establishes the baseline comparison.
func (p *Proxy) pollOnce(st *monitorState) {
	content, err := p.web.Get(st.URL)
	if err != nil {
		return
	}
	block, ok := ExtractBlock(content, st.StartKeyword, st.EndKeyword)
	if !ok {
		return
	}
	st.mu.Lock()
	changed := st.havePrior && st.baseline != block
	st.baseline = block
	st.havePrior = true
	st.mu.Unlock()
	if !changed {
		return
	}
	a := &alert.Alert{
		ID:       alert.NextID(st.Name),
		Source:   st.Source,
		Keywords: append([]string(nil), st.Keywords...),
		Subject:  fmt.Sprintf("%s changed", st.Name),
		Body:     block,
		Urgency:  st.Urgency,
		Created:  p.clk.Now(),
	}
	p.mu.Lock()
	p.alerts++
	p.mu.Unlock()
	rep, err := p.target.Deliver(a)
	if p.OnReport != nil {
		p.OnReport(st.Monitor, rep, err)
	}
}

// ExtractBlock returns the content between the first occurrence of
// start and the next occurrence of end after it. Empty start matches
// the beginning of the content; empty end matches the end. ok is
// false when a non-empty keyword is absent.
func ExtractBlock(content, start, end string) (block string, ok bool) {
	from := 0
	if start != "" {
		i := strings.Index(content, start)
		if i < 0 {
			return "", false
		}
		from = i + len(start)
	}
	rest := content[from:]
	if end == "" {
		return rest, true
	}
	j := strings.Index(rest, end)
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}
