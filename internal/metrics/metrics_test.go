package metrics

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderEmptySummary(t *testing.T) {
	var r Recorder
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if got := s.String(); got != "no samples" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRecorderBasicStats(t *testing.T) {
	var r Recorder
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		r.Observe(d)
	}
	s := r.Summarize()
	if s.Count != 3 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != time.Second || s.Max != 3*time.Second {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 2*time.Second {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.P50 != 2*time.Second {
		t.Fatalf("P50 = %v", s.P50)
	}
}

func TestRecorderReset(t *testing.T) {
	var r Recorder
	r.Observe(time.Second)
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Count(); got != 1600 {
		t.Fatalf("Count = %d, want 1600", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []time.Duration{0, 10, 20, 30, 40}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0, 0}, {1, 40}, {-0.5, 0}, {1.5, 40},
		{0.5, 20},
		{0.25, 10},
		{0.875, 35},
	}
	for _, tt := range tests {
		if got := percentile(sorted, tt.p); got != tt.want {
			t.Fatalf("percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("percentile(nil) = %v", got)
	}
}

func TestSummaryPropertyBounds(t *testing.T) {
	// Property: min <= p50 <= p90 <= p99 <= max, and min <= mean <= max.
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var r Recorder
		for _, v := range raw {
			d := time.Duration(int64(v)+40000) * time.Millisecond // keep positive
			r.Observe(d)
		}
		s := r.Summarize()
		ordered := []time.Duration{s.Min, s.P50, s.P90, s.P99, s.Max}
		if !sort.SliceIsSorted(ordered, func(i, j int) bool { return ordered[i] < ordered[j] }) {
			return false
		}
		return s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSet(t *testing.T) {
	var c CounterSet
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d", got)
	}
	c.Add1("restarts")
	c.Inc("restarts", 2)
	c.Add1("relogins")
	if got := c.Get("restarts"); got != 3 {
		t.Fatalf("restarts = %d, want 3", got)
	}
	snap := c.Snapshot()
	snap["restarts"] = 99
	if c.Get("restarts") != 3 {
		t.Fatal("Snapshot aliases internal map")
	}
	if got := c.String(); got != "relogins=1 restarts=3" {
		t.Fatalf("String() = %q", got)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	var c CounterSet
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				c.Add1("n")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 2000 {
		t.Fatalf("n = %d, want 2000", got)
	}
}

func TestReservoirBoundsMemoryKeepsExactStats(t *testing.T) {
	const cap = 64
	r := NewReservoir(cap)
	const n = 100_000
	for i := 1; i <= n; i++ {
		r.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := len(r.Snapshot()); got != cap {
		t.Fatalf("reservoir holds %d samples, want %d", got, cap)
	}
	if r.Count() != n {
		t.Fatalf("Count = %d, want %d", r.Count(), n)
	}
	s := r.Summarize()
	if s.Count != n {
		t.Fatalf("Summary.Count = %d, want %d", s.Count, n)
	}
	if s.Min != time.Microsecond {
		t.Fatalf("Min = %v, want 1µs (exact)", s.Min)
	}
	if s.Max != n*time.Microsecond {
		t.Fatalf("Max = %v, want %v (exact)", s.Max, n*time.Microsecond)
	}
	wantMean := time.Duration((n + 1) / 2 * int64(time.Microsecond))
	if diff := s.Mean - wantMean; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("Mean = %v, want %v (exact)", s.Mean, wantMean)
	}
	// The uniform [1µs, 100ms] stream has p50 ≈ 50ms; the reservoir
	// estimate should land in a generous window around it.
	mid := time.Duration(n/2) * time.Microsecond
	if s.P50 < mid/2 || s.P50 > mid*3/2 {
		t.Fatalf("reservoir P50 = %v, want ≈%v", s.P50, mid)
	}
}

func TestReservoirBelowCapacityMatchesUnbounded(t *testing.T) {
	r := NewReservoir(1000)
	var u Recorder
	for i := 0; i < 100; i++ {
		d := time.Duration(i) * time.Millisecond
		r.Observe(d)
		u.Observe(d)
	}
	rs, us := r.Summarize(), u.Summarize()
	if rs != us {
		t.Fatalf("below capacity summaries differ:\nreservoir %+v\nunbounded %+v", rs, us)
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(4)
	for i := 0; i < 100; i++ {
		r.Observe(time.Second)
	}
	r.Reset()
	if r.Count() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("reset did not clear reservoir")
	}
	if s := r.Summarize(); s.Count != 0 {
		t.Fatalf("post-reset summary %+v", s)
	}
	r.Observe(time.Minute)
	if s := r.Summarize(); s.Min != time.Minute || s.Max != time.Minute {
		t.Fatalf("post-reset observe summary %+v", s)
	}
}

func TestReservoirConcurrent(t *testing.T) {
	r := NewReservoir(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				r.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if r.Count() != 80_000 {
		t.Fatalf("Count = %d, want 80000", r.Count())
	}
}

func TestGaugeTracksPeak(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Load(); got != 2 {
		t.Fatalf("Load = %d, want 2", got)
	}
	if got := g.Peak(); got != 3 {
		t.Fatalf("Peak = %d, want 3", got)
	}
	g.Add(-2)
	if got := g.Load(); got != 0 {
		t.Fatalf("Load after drain = %d, want 0", got)
	}
	if got := g.Peak(); got != 3 {
		t.Fatalf("Peak after drain = %d, want 3", got)
	}
}

func TestGaugeConcurrentPeakNeverBelowLoad(t *testing.T) {
	var g Gauge
	const workers, rounds = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 0 {
		t.Fatalf("Load after balanced inc/dec = %d, want 0", got)
	}
	if p := g.Peak(); p < 1 || p > workers {
		t.Fatalf("Peak = %d, want in [1, %d]", p, workers)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 5, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Min != -5 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got, want := s.Mean(), float64(-5+0+1+2+3+4+5+1000)/8; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	// Power-of-two upper bounds: <=1 holds {-5,0,1}, <=2 {2}, <=4 {3,4},
	// <=8 {5}, <=1024 {1000}.
	want := []HistogramBucket{{1, 3}, {2, 1}, {4, 2}, {8, 1}, {1024, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
	if str := s.String(); !strings.Contains(str, "n=8") || !strings.Contains(str, "<=1024:1") {
		t.Fatalf("String() = %q", str)
	}
	if (HistogramSnapshot{}).String() != "no samples" {
		t.Fatal("empty snapshot should render as no samples")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	if s.Min != 1 || s.Max != per {
		t.Fatalf("Min/Max = %d/%d, want 1/%d", s.Min, s.Max, per)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}
