// Package metrics provides the measurement plumbing used by the SIMBA
// experiment harness: latency recorders with percentile summaries and
// named counters for recovery/fault accounting.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	randv2 "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder accumulates duration samples. The zero value is ready to use
// and keeps every sample; NewReservoir builds a bounded-memory variant
// for workloads that observe millions of samples (e.g. hub runs).
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	// limit > 0 switches Observe to reservoir sampling: samples holds a
	// uniform random subset of at most limit observations while seen,
	// min, max, sum, and sumsq stay exact.
	limit int
	rnd   *rand.Rand
	seen  int64
	min   time.Duration
	max   time.Duration
	sum   float64
	sumsq float64
}

// NewReservoir returns a Recorder that retains at most capacity samples
// via reservoir sampling. Count, Min, Max, Mean, and Stddev stay exact
// over every observation; percentiles are estimated from the reservoir.
// The reservoir's randomness is seeded, so runs are reproducible.
func NewReservoir(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{limit: capacity, rnd: rand.New(rand.NewSource(1))}
}

// Observe adds one sample.
func (r *Recorder) Observe(d time.Duration) {
	r.mu.Lock()
	r.seen++
	if r.seen == 1 || d < r.min {
		r.min = d
	}
	if r.seen == 1 || d > r.max {
		r.max = d
	}
	f := float64(d)
	r.sum += f
	r.sumsq += f * f
	switch {
	case r.limit <= 0 || len(r.samples) < r.limit:
		r.samples = append(r.samples, d)
	default:
		if j := r.rnd.Int63n(r.seen); j < int64(r.limit) {
			r.samples[j] = d
		}
	}
	r.mu.Unlock()
}

// Count returns the number of samples observed (not the reservoir
// occupancy).
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.seen)
}

// Snapshot returns a copy of the retained samples. For a reservoir
// Recorder past capacity this is a uniform subset of the observations.
func (r *Recorder) Snapshot() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.samples...)
}

// Reset discards all samples and exact statistics.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.seen, r.min, r.max, r.sum, r.sumsq = 0, 0, 0, 0, 0
	r.mu.Unlock()
}

// Summary is a statistical digest of a Recorder.
type Summary struct {
	Count          int
	Min, Max, Mean time.Duration
	Stddev         time.Duration
	P50, P90, P99  time.Duration
}

// Summarize computes the digest. An empty recorder yields a zero
// Summary. Count, Min, Max, Mean, and Stddev are exact over every
// observation; for a reservoir Recorder past capacity the percentiles
// are estimates drawn from the retained subset.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	samples := append([]time.Duration(nil), r.samples...)
	seen, min, max, sum, sumsq := r.seen, r.min, r.max, r.sum, r.sumsq
	r.mu.Unlock()
	if seen == 0 {
		return Summary{}
	}
	s := summarize(samples)
	s.Count = int(seen)
	s.Min, s.Max = min, max
	mean := sum / float64(seen)
	s.Mean = time.Duration(mean)
	variance := sumsq/float64(seen) - mean*mean
	if variance < 0 {
		variance = 0
	}
	s.Stddev = time.Duration(math.Sqrt(variance))
	return s
}

func summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, s := range sorted {
		sum += float64(s)
	}
	mean := sum / float64(len(sorted))
	var varSum float64
	for _, s := range sorted {
		d := float64(s) - mean
		varSum += d * d
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   time.Duration(mean),
		Stddev: time.Duration(math.Sqrt(varSum / float64(len(sorted)))),
		P50:    percentile(sorted, 0.50),
		P90:    percentile(sorted, 0.90),
		P99:    percentile(sorted, 0.99),
	}
}

// percentile returns the p-quantile (0 <= p <= 1) of sorted samples
// using nearest-rank interpolation.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// String renders the summary compactly.
func (s Summary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v min=%v max=%v",
		s.Count, round(s.Mean), round(s.P50), round(s.P90), round(s.P99), round(s.Min), round(s.Max))
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }

// Gauge is a current-value instrument with a peak watermark — e.g. the
// number of in-flight deliveries in a pipeline stage. The zero value is
// ready to use and safe for concurrent use.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Inc adds one and returns the new value.
func (g *Gauge) Inc() int64 { return g.Add(1) }

// Dec subtracts one and returns the new value.
func (g *Gauge) Dec() int64 { return g.Add(-1) }

// Add applies delta and returns the new value, updating the peak.
func (g *Gauge) Add(delta int64) int64 {
	v := g.v.Add(delta)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return v
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak returns the highest value ever observed.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// Histogram counts int64 observations in power-of-two buckets — cheap
// enough for hot paths (fsync latencies, commit batch sizes) where a
// full reservoir Recorder is overkill but a mean hides the tail. The
// zero value is ready to use and safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [64]int64 // bucket i counts observations v with 2^(i-1) < v <= 2^i
	count  int64
	sum    int64
	min    int64
	max    int64
}

// Observe adds one observation. Values <= 1 (including negatives) land
// in the first bucket.
func (h *Histogram) Observe(v int64) {
	b := 0
	if v > 1 {
		b = 64 - bits.LeadingZeros64(uint64(v-1)) // ceil(log2(v))
	}
	h.mu.Lock()
	h.counts[b]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramBucket is one non-empty bucket: Count observations were
// <= Le (and greater than the previous bucket's Le).
type HistogramBucket struct {
	Le    int64
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count, Sum, Min, Max int64
	Buckets              []HistogramBucket // non-empty buckets, ascending
}

// Mean returns the exact mean of all observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies out the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := int64(1)
		if i > 0 {
			le = int64(1) << uint(i)
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: le, Count: c})
	}
	return s
}

// String renders the non-empty buckets compactly:
// "n=42 mean=3.1 min=1 max=16 [<=1:2 <=4:30 <=16:10]".
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f min=%d max=%d [", s.Count, s.Mean(), s.Min, s.Max)
	for i, bk := range s.Buckets {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "<=%d:%d", bk.Le, bk.Count)
	}
	b.WriteString("]")
	return b.String()
}

// Merge combines two snapshots into one, as if every observation from
// both had landed in a single histogram: counts and sums add, buckets
// with equal bounds coalesce, and min/max take the extremes. Used to
// aggregate per-lane WAL histograms into one hub-wide view.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	m := HistogramSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum, Min: s.Min, Max: s.Max}
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < o.Buckets[j].Le):
			m.Buckets = append(m.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Le < s.Buckets[i].Le:
			m.Buckets = append(m.Buckets, o.Buckets[j])
			j++
		default:
			m.Buckets = append(m.Buckets, HistogramBucket{Le: s.Buckets[i].Le, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	return m
}

// counterStripes is the number of independent cells per Counter. Must
// be a power of two. Eight cells keep a heavily shared counter (every
// hub submitter bumps "received") off a single contended cache line
// while costing only 512 B per registered name.
const counterStripes = 8

// counterCell pads each stripe out to a cache line so concurrent Adds
// on different stripes never false-share.
type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is one named counter resolved from a CounterSet. Hot paths
// resolve the handle once at registration and then increment with a
// single atomic add — no map hash, no mutex. The add lands on a
// randomly chosen stripe (math/rand/v2's per-thread generator, no
// lock), so writers under contention spread across cache lines.
type Counter struct {
	cells [counterStripes]counterCell
}

// Add adds delta (which may be negative in tests but typically 1).
func (c *Counter) Add(delta int64) {
	c.cells[randv2.Uint64()&(counterStripes-1)].n.Add(delta)
}

// Add1 increments the counter by one.
func (c *Counter) Add1() { c.Add(1) }

// Value sums the stripes. Concurrent Adds may or may not be included;
// the result is exact once writers quiesce.
func (c *Counter) Value() int64 {
	var v int64
	for i := range c.cells {
		v += c.cells[i].n.Load()
	}
	return v
}

// CounterSet is a set of named monotonically increasing counters. The
// zero value is ready to use. The name→counter map is copy-on-write:
// registration (the first use of a name) takes a mutex and swaps in a
// rebuilt map, while lookups and increments are lock-free.
type CounterSet struct {
	mu sync.Mutex // serializes registration only
	m  atomic.Pointer[map[string]*Counter]
}

// Counter returns the named counter's handle, registering it on first
// use. Resolve handles once outside hot loops: Add on the handle is a
// single atomic add, whereas Inc/Add1 by name repeat the map lookup.
func (c *CounterSet) Counter(name string) *Counter {
	if m := c.m.Load(); m != nil {
		if ctr, ok := (*m)[name]; ok {
			return ctr
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.m.Load()
	if cur != nil {
		if ctr, ok := (*cur)[name]; ok {
			return ctr
		}
	}
	next := make(map[string]*Counter, 8)
	if cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	ctr := new(Counter)
	next[name] = ctr
	c.m.Store(&next)
	return ctr
}

// Inc adds delta (which may be negative in tests but typically 1).
func (c *CounterSet) Inc(name string, delta int64) { c.Counter(name).Add(delta) }

// Add1 increments name by one.
func (c *CounterSet) Add1(name string) { c.Counter(name).Add(1) }

// Get returns the current value of name (zero if never incremented).
func (c *CounterSet) Get(name string) int64 {
	if m := c.m.Load(); m != nil {
		if ctr, ok := (*m)[name]; ok {
			return ctr.Value()
		}
	}
	return 0
}

// Snapshot returns a copy of all counters. Names whose value is zero
// (registered but never incremented) are omitted, matching the
// pre-registration behavior where only incremented names existed.
func (c *CounterSet) Snapshot() map[string]int64 {
	m := c.m.Load()
	if m == nil {
		return map[string]int64{}
	}
	out := make(map[string]int64, len(*m))
	for k, ctr := range *m {
		if v := ctr.Value(); v != 0 {
			out[k] = v
		}
	}
	return out
}

// String renders counters sorted by name.
func (c *CounterSet) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}
