// Package im simulates the Instant Messaging service SIMBA uses as its
// universal, time-critical alert channel. The simulator reproduces the
// properties the paper depends on:
//
//   - presence: a sender can query whether a buddy is online;
//   - fast, synchronous delivery: one-way latency is a few hundred
//     milliseconds (configurable distribution);
//   - per-session message sequence numbers, which the SIMBA library
//     tags acknowledgements with;
//   - realistic failure modes: whole-service outages (during which
//     logins and sends fail), forced logouts ("server recovery or
//     network disconnection"), and dropped messages for offline
//     recipients.
//
// Application-level acknowledgements are deliberately NOT implemented
// here: per the paper, SIMBA builds acks above the IM protocol, in the
// library layer.
package im

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/faults"
)

// Service errors.
var (
	// ErrServiceUnavailable indicates an IM service outage.
	ErrServiceUnavailable = errors.New("im: service unavailable")
	// ErrNotLoggedIn indicates the session has been logged out.
	ErrNotLoggedIn = errors.New("im: session not logged in")
	// ErrUnknownHandle indicates the handle is not registered.
	ErrUnknownHandle = errors.New("im: unknown handle")
	// ErrRecipientOffline indicates the recipient has no live session.
	ErrRecipientOffline = errors.New("im: recipient offline")
)

// Status is a buddy's presence state.
type Status int

// Presence states.
const (
	StatusOffline Status = iota + 1
	StatusOnline
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOffline:
		return "offline"
	case StatusOnline:
		return "online"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Message is one delivered instant message.
type Message struct {
	From, To string
	Text     string
	// Seq is the sender session's sequence number for this message.
	Seq uint64
	// SentAt and DeliveredAt are virtual timestamps.
	SentAt      time.Time
	DeliveredAt time.Time
}

// Config parameterizes a Service.
type Config struct {
	// Clock drives all latency; required.
	Clock clock.Clock
	// RNG seeds delivery latency sampling; required.
	RNG *dist.RNG
	// HopDelay is the one-way delivery latency distribution. The
	// default models the paper's sub-second IM delivery.
	HopDelay dist.Dist
	// Outage, when active, fails logins and sends. Optional.
	Outage *faults.Flag
	// InboxSize bounds each session's undelivered message buffer.
	InboxSize int
}

// Service is the simulated IM cloud.
type Service struct {
	clk      clock.Clock
	rng      *dist.RNG
	hopDelay dist.Dist
	outage   *faults.Flag
	inboxLen int

	mu       sync.Mutex
	accounts map[string]*account
	dropped  int // messages lost to offline recipients or full inboxes
}

type account struct {
	handle  string
	session *Session // nil when logged out
}

// NewService builds an IM service.
func NewService(cfg Config) (*Service, error) {
	if cfg.Clock == nil {
		return nil, errors.New("im: Config.Clock is required")
	}
	if cfg.RNG == nil {
		return nil, errors.New("im: Config.RNG is required")
	}
	if cfg.HopDelay == nil {
		// Sub-second one-way delivery, per Section 5.
		cfg.HopDelay = dist.Normal{Mean: 300 * time.Millisecond, Stddev: 100 * time.Millisecond, Floor: 50 * time.Millisecond}
	}
	if cfg.Outage == nil {
		cfg.Outage = faults.NewFlag("im-service-outage")
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 256
	}
	return &Service{
		clk:      cfg.Clock,
		rng:      cfg.RNG,
		hopDelay: cfg.HopDelay,
		outage:   cfg.Outage,
		inboxLen: cfg.InboxSize,
		accounts: make(map[string]*account),
	}, nil
}

// Outage returns the service's outage flag so fault schedules can
// toggle it.
func (s *Service) Outage() *faults.Flag { return s.outage }

// Register creates an account for handle. Registering an existing
// handle is an error.
func (s *Service) Register(handle string) error {
	if handle == "" {
		return errors.New("im: empty handle")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[handle]; ok {
		return fmt.Errorf("im: handle %q already registered", handle)
	}
	s.accounts[handle] = &account{handle: handle}
	return nil
}

// Login opens a session for handle. A second login kicks the first
// session, as commercial IM services do. Login fails during an outage.
func (s *Service) Login(handle string) (*Session, error) {
	if s.outage.Active() {
		return nil, ErrServiceUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[handle]
	if !ok {
		return nil, fmt.Errorf("im: login %q: %w", handle, ErrUnknownHandle)
	}
	if acct.session != nil {
		acct.session.invalidate()
	}
	sess := &Session{
		svc:    s,
		handle: handle,
		inbox:  make(chan Message, s.inboxLen),
		alive:  true,
	}
	acct.session = sess
	return sess, nil
}

// ForceLogout terminates handle's live session, simulating server
// recovery or a network disconnection. It reports whether a session
// was terminated.
func (s *Service) ForceLogout(handle string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[handle]
	if !ok || acct.session == nil {
		return false
	}
	acct.session.invalidate()
	acct.session = nil
	return true
}

// ForceLogoutAll terminates every live session (e.g. at the start of a
// service outage) and returns how many were terminated.
func (s *Service) ForceLogoutAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, acct := range s.accounts {
		if acct.session != nil {
			acct.session.invalidate()
			acct.session = nil
			n++
		}
	}
	return n
}

// Status returns handle's presence.
func (s *Service) Status(handle string) (Status, error) {
	if s.outage.Active() {
		return 0, ErrServiceUnavailable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	acct, ok := s.accounts[handle]
	if !ok {
		return 0, fmt.Errorf("im: status %q: %w", handle, ErrUnknownHandle)
	}
	if acct.session == nil {
		return StatusOffline, nil
	}
	return StatusOnline, nil
}

// Dropped returns how many messages were lost to offline recipients,
// kicked sessions, or full inboxes.
func (s *Service) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// deliver routes msg to the recipient's live session after the hop
// delay; the message is dropped if the recipient is gone by then.
func (s *Service) deliver(msg Message) {
	delay := s.hopDelay.Sample(s.rng)
	s.clk.AfterFunc(delay, func() {
		if s.outage.Active() {
			s.noteDrop()
			return
		}
		s.mu.Lock()
		acct, ok := s.accounts[msg.To]
		var sess *Session
		if ok {
			sess = acct.session
		}
		s.mu.Unlock()
		if sess == nil {
			s.noteDrop()
			return
		}
		msg.DeliveredAt = s.clk.Now()
		select {
		case sess.inbox <- msg:
		default:
			s.noteDrop()
		}
	})
}

func (s *Service) noteDrop() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}

// Session is one logged-in IM connection.
type Session struct {
	svc    *Service
	handle string
	inbox  chan Message

	mu    sync.Mutex
	alive bool
	seq   uint64
}

// Handle returns the session's own handle.
func (se *Session) Handle() string { return se.handle }

// Inbox returns the channel on which delivered messages arrive. The
// channel is never closed; use LoggedIn to detect forced logout.
func (se *Session) Inbox() <-chan Message { return se.inbox }

// LoggedIn reports whether the session is still live.
func (se *Session) LoggedIn() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.alive
}

// Send transmits text to the named handle. It returns the message's
// session sequence number. Send fails during outages, after logout,
// and when the recipient is offline at send time (IM presence makes
// that visible to the sender, unlike email).
func (se *Session) Send(to, text string) (uint64, error) {
	if se.svc.outage.Active() {
		return 0, ErrServiceUnavailable
	}
	se.mu.Lock()
	if !se.alive {
		se.mu.Unlock()
		return 0, ErrNotLoggedIn
	}
	se.seq++
	seq := se.seq
	se.mu.Unlock()

	st, err := se.svc.Status(to)
	if err != nil {
		return 0, err
	}
	if st != StatusOnline {
		return 0, fmt.Errorf("im: send to %q: %w", to, ErrRecipientOffline)
	}
	msg := Message{
		From:   se.handle,
		To:     to,
		Text:   text,
		Seq:    seq,
		SentAt: se.svc.clk.Now(),
	}
	se.svc.deliver(msg)
	return seq, nil
}

// Status queries a buddy's presence through this session.
func (se *Session) Status(handle string) (Status, error) {
	se.mu.Lock()
	alive := se.alive
	se.mu.Unlock()
	if !alive {
		return 0, ErrNotLoggedIn
	}
	return se.svc.Status(handle)
}

// Logout voluntarily ends the session.
func (se *Session) Logout() {
	se.svc.mu.Lock()
	defer se.svc.mu.Unlock()
	acct, ok := se.svc.accounts[se.handle]
	if ok && acct.session == se {
		acct.session = nil
	}
	se.invalidate()
}

// invalidate marks the session dead. Callers hold svc.mu or are the
// service itself during login/kick.
func (se *Session) invalidate() {
	se.mu.Lock()
	se.alive = false
	se.mu.Unlock()
}
