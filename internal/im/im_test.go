package im

import (
	"errors"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
)

func newTestService(t *testing.T) (*Service, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	svc, err := NewService(Config{
		Clock:    sim,
		RNG:      dist.NewRNG(1),
		HopDelay: dist.Fixed(300 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc, sim
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(Config{RNG: dist.NewRNG(1)}); err == nil {
		t.Fatal("missing clock accepted")
	}
	if _, err := NewService(Config{Clock: clock.NewSim(time.Time{})}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}

func TestRegisterAndLogin(t *testing.T) {
	svc, _ := newTestService(t)
	if err := svc.Register(""); err == nil {
		t.Fatal("empty handle accepted")
	}
	if err := svc.Register("alice"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("alice"); err == nil {
		t.Fatal("duplicate handle accepted")
	}
	if _, err := svc.Login("nobody"); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("Login(nobody) = %v", err)
	}
	sess, err := svc.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !sess.LoggedIn() || sess.Handle() != "alice" {
		t.Fatal("session not live after login")
	}
}

func TestPresence(t *testing.T) {
	svc, _ := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	st, err := svc.Status("bob")
	if err != nil || st != StatusOffline {
		t.Fatalf("Status = %v, %v", st, err)
	}
	if _, err := svc.Status("ghost"); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("Status(ghost) = %v", err)
	}
	bob, _ := svc.Login("bob")
	if st, _ := svc.Status("bob"); st != StatusOnline {
		t.Fatalf("Status after login = %v", st)
	}
	bob.Logout()
	if st, _ := svc.Status("bob"); st != StatusOffline {
		t.Fatalf("Status after logout = %v", st)
	}
	if st := StatusOnline.String(); st != "online" {
		t.Fatalf("String() = %q", st)
	}
	if st := Status(9).String(); st != "status(9)" {
		t.Fatalf("String() = %q", st)
	}
}

func TestSendDeliversAfterHopDelay(t *testing.T) {
	svc, sim := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	alice, _ := svc.Login("alice")
	bob, _ := svc.Login("bob")

	sent := sim.Now()
	seq, err := alice.Send("bob", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first seq = %d", seq)
	}
	select {
	case <-bob.Inbox():
		t.Fatal("delivered before hop delay")
	default:
	}
	sim.Advance(time.Second)
	select {
	case msg := <-bob.Inbox():
		if msg.From != "alice" || msg.To != "bob" || msg.Text != "hello" || msg.Seq != 1 {
			t.Fatalf("message = %+v", msg)
		}
		if got := msg.DeliveredAt.Sub(sent); got != 300*time.Millisecond {
			t.Fatalf("one-way latency = %v, want 300ms", got)
		}
	default:
		t.Fatal("message not delivered")
	}
}

func TestSendSequenceNumbersIncrease(t *testing.T) {
	svc, _ := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	alice, _ := svc.Login("alice")
	_, _ = svc.Login("bob")
	for want := uint64(1); want <= 5; want++ {
		seq, err := alice.Send("bob", "x")
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
	}
}

func TestSendToOfflineFails(t *testing.T) {
	svc, _ := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	alice, _ := svc.Login("alice")
	if _, err := alice.Send("bob", "x"); !errors.Is(err, ErrRecipientOffline) {
		t.Fatalf("Send to offline = %v", err)
	}
	if _, err := alice.Send("ghost", "x"); !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("Send to unknown = %v", err)
	}
}

func TestRecipientLogsOutMidFlight(t *testing.T) {
	svc, sim := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	alice, _ := svc.Login("alice")
	bob, _ := svc.Login("bob")
	if _, err := alice.Send("bob", "x"); err != nil {
		t.Fatal(err)
	}
	bob.Logout()
	sim.Advance(time.Second)
	if got := svc.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}
}

func TestOutageFailsLoginSendAndStatus(t *testing.T) {
	svc, sim := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	alice, _ := svc.Login("alice")
	_, _ = svc.Login("bob")

	svc.Outage().Set(true, sim.Now())
	if _, err := svc.Login("bob"); !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("Login during outage = %v", err)
	}
	if _, err := alice.Send("bob", "x"); !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("Send during outage = %v", err)
	}
	if _, err := svc.Status("bob"); !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("Status during outage = %v", err)
	}
	svc.Outage().Set(false, sim.Now())
	if _, err := alice.Send("bob", "x"); err != nil {
		t.Fatalf("Send after outage = %v", err)
	}
}

func TestInFlightMessageDroppedByOutage(t *testing.T) {
	svc, sim := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	alice, _ := svc.Login("alice")
	bob, _ := svc.Login("bob")
	if _, err := alice.Send("bob", "x"); err != nil {
		t.Fatal(err)
	}
	svc.Outage().Set(true, sim.Now())
	sim.Advance(time.Second)
	select {
	case <-bob.Inbox():
		t.Fatal("message delivered during outage")
	default:
	}
	if svc.Dropped() != 1 {
		t.Fatalf("Dropped() = %d", svc.Dropped())
	}
}

func TestSecondLoginKicksFirst(t *testing.T) {
	svc, _ := newTestService(t)
	mustRegister(t, svc, "alice")
	first, _ := svc.Login("alice")
	second, err := svc.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	if first.LoggedIn() {
		t.Fatal("first session still live after second login")
	}
	if !second.LoggedIn() {
		t.Fatal("second session not live")
	}
	if _, err := first.Send("alice", "x"); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("Send on kicked session = %v", err)
	}
	if _, err := first.Status("alice"); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("Status on kicked session = %v", err)
	}
}

func TestForceLogout(t *testing.T) {
	svc, _ := newTestService(t)
	mustRegister(t, svc, "alice", "bob")
	sess, _ := svc.Login("alice")
	if !svc.ForceLogout("alice") {
		t.Fatal("ForceLogout found no session")
	}
	if sess.LoggedIn() {
		t.Fatal("session live after ForceLogout")
	}
	if svc.ForceLogout("alice") {
		t.Fatal("second ForceLogout reported a session")
	}
	if svc.ForceLogout("ghost") {
		t.Fatal("ForceLogout(ghost) reported a session")
	}
}

func TestForceLogoutAll(t *testing.T) {
	svc, _ := newTestService(t)
	mustRegister(t, svc, "a", "b", "c")
	s1, _ := svc.Login("a")
	s2, _ := svc.Login("b")
	if n := svc.ForceLogoutAll(); n != 2 {
		t.Fatalf("ForceLogoutAll = %d, want 2", n)
	}
	if s1.LoggedIn() || s2.LoggedIn() {
		t.Fatal("sessions live after ForceLogoutAll")
	}
}

func TestInboxOverflowDrops(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	svc, err := NewService(Config{
		Clock:     sim,
		RNG:       dist.NewRNG(1),
		HopDelay:  dist.Fixed(10 * time.Millisecond),
		InboxSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, svc, "alice", "bob")
	alice, _ := svc.Login("alice")
	_, _ = svc.Login("bob")
	for i := 0; i < 5; i++ {
		if _, err := alice.Send("bob", "x"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(time.Second)
	if got := svc.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
}

func mustRegister(t *testing.T, svc *Service, handles ...string) {
	t.Helper()
	for _, h := range handles {
		if err := svc.Register(h); err != nil {
			t.Fatal(err)
		}
	}
}
