package dmode_test

import (
	"fmt"

	"simba/internal/dmode"
)

// The paper's Figure 4: a delivery mode with two communication blocks —
// an urgent IM+SMS block bounded by a confirmation timeout, backed by
// an email block.
func ExampleFigure4() {
	data, err := dmode.Figure4().Marshal()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(data))
	// Output:
	// <deliveryMode name="Urgent">
	//   <block timeout="30s">
	//     <action address="MSN IM"></action>
	//     <action address="Cell SMS"></action>
	//   </block>
	//   <block>
	//     <action address="Work email"></action>
	//     <action address="Home email"></action>
	//   </block>
	// </deliveryMode>
}

// Delivery modes round-trip through their XML document form.
func ExampleUnmarshal() {
	doc := []byte(`<deliveryMode name="Travel">
  <block timeout="1m0s"><action address="Hotel email"></action></block>
</deliveryMode>`)
	m, err := dmode.Unmarshal(doc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d block(s), first timeout %s\n",
		m.Name, len(m.Blocks), m.Blocks[0].EffectiveTimeout())
	// Output:
	// Travel: 1 block(s), first timeout 1m0s
}
