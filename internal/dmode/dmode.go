// Package dmode implements SIMBA delivery modes — the paper's
// abstraction for personalized dependability levels. A delivery mode is
// an XML document containing one or more communication blocks, each
// holding one or more actions; every action names a user address by its
// friendly name.
//
// Routing semantics (implemented by the delivery engine in
// internal/core, specified here):
//
//   - Blocks are tried in document order. Later blocks are backups.
//   - Within a block, all actions whose addresses are enabled are
//     performed. Actions mapping to disabled addresses are skipped.
//   - A block succeeds if at least one of its actions confirms
//     delivery within the block's timeout (IM actions require the
//     receiver's application-level acknowledgement; email and SMS
//     actions are fire-and-forget and count as confirmed on accept).
//   - If a block fails — all actions skipped, failed, or timed out —
//     the engine falls back to the next block.
package dmode

import (
	"encoding/xml"
	"fmt"
	"time"
)

// DefaultBlockTimeout applies when a block does not specify one.
const DefaultBlockTimeout = 30 * time.Second

// Duration is a time.Duration that XML-marshals as its string form
// (e.g. timeout="30s").
type Duration time.Duration

var (
	_ xml.MarshalerAttr   = Duration(0)
	_ xml.UnmarshalerAttr = (*Duration)(nil)
)

// MarshalXMLAttr implements xml.MarshalerAttr.
func (d Duration) MarshalXMLAttr(name xml.Name) (xml.Attr, error) {
	if d == 0 {
		return xml.Attr{}, nil // omit
	}
	return xml.Attr{Name: name, Value: time.Duration(d).String()}, nil
}

// UnmarshalXMLAttr implements xml.UnmarshalerAttr.
func (d *Duration) UnmarshalXMLAttr(attr xml.Attr) error {
	v, err := time.ParseDuration(attr.Value)
	if err != nil {
		return fmt.Errorf("dmode: bad duration attribute %q: %w", attr.Value, err)
	}
	*d = Duration(v)
	return nil
}

// Action names one address (by friendly name) to deliver through.
type Action struct {
	Address string `xml:"address,attr"`
}

// Block is one communication block: a set of actions tried together,
// bounded by a confirmation timeout.
type Block struct {
	// Timeout bounds how long the engine waits for a confirmation from
	// this block before falling back. Zero means DefaultBlockTimeout.
	Timeout Duration `xml:"timeout,attr,omitempty"`
	Actions []Action `xml:"action"`
}

// EffectiveTimeout returns the block timeout, applying the default.
func (b *Block) EffectiveTimeout() time.Duration {
	if b.Timeout == 0 {
		return DefaultBlockTimeout
	}
	return time.Duration(b.Timeout)
}

// Mode is a named delivery mode document.
type Mode struct {
	XMLName xml.Name `xml:"deliveryMode"`
	Name    string   `xml:"name,attr"`
	Blocks  []Block  `xml:"block"`
}

// Validate reports whether the mode is well-formed: a name, at least
// one block, and at least one action per block.
func (m *Mode) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("dmode: delivery mode missing name")
	}
	if len(m.Blocks) == 0 {
		return fmt.Errorf("dmode: delivery mode %q has no communication blocks", m.Name)
	}
	for i := range m.Blocks {
		b := &m.Blocks[i]
		if len(b.Actions) == 0 {
			return fmt.Errorf("dmode: mode %q block %d has no actions", m.Name, i)
		}
		if time.Duration(b.Timeout) < 0 {
			return fmt.Errorf("dmode: mode %q block %d has negative timeout", m.Name, i)
		}
		for j, a := range b.Actions {
			if a.Address == "" {
				return fmt.Errorf("dmode: mode %q block %d action %d missing address", m.Name, i, j)
			}
		}
	}
	return nil
}

// AddressNames returns every friendly name referenced by the mode, in
// block order, without duplicates.
func (m *Mode) AddressNames() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range m.Blocks {
		for _, a := range m.Blocks[i].Actions {
			if !seen[a.Address] {
				seen[a.Address] = true
				out = append(out, a.Address)
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (m *Mode) Clone() *Mode {
	c := Mode{Name: m.Name, Blocks: make([]Block, len(m.Blocks))}
	for i := range m.Blocks {
		c.Blocks[i] = Block{
			Timeout: m.Blocks[i].Timeout,
			Actions: append([]Action(nil), m.Blocks[i].Actions...),
		}
	}
	return &c
}

// Marshal renders the mode as an XML document.
func (m *Mode) Marshal() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return xml.MarshalIndent(m, "", "  ")
}

// Unmarshal parses and validates a delivery-mode document.
func Unmarshal(data []byte) (*Mode, error) {
	var m Mode
	if err := xml.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dmode: parsing delivery mode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Figure4 returns the paper's Figure 4 sample: a delivery mode with two
// communication blocks — an urgent IM+SMS block with a confirmation
// timeout, backed by an email block.
func Figure4() *Mode {
	return &Mode{
		Name: "Urgent",
		Blocks: []Block{
			{
				Timeout: Duration(30 * time.Second),
				Actions: []Action{{Address: "MSN IM"}, {Address: "Cell SMS"}},
			},
			{
				Actions: []Action{{Address: "Work email"}, {Address: "Home email"}},
			},
		},
	}
}

// IMThenEmail returns the delivery mode the paper's alert sources use
// to reach MyAlertBuddy: "IM-with-acknowledgement followed by email".
func IMThenEmail(imName, emailName string, imTimeout time.Duration) *Mode {
	return &Mode{
		Name: "IMThenEmail",
		Blocks: []Block{
			{Timeout: Duration(imTimeout), Actions: []Action{{Address: imName}}},
			{Actions: []Action{{Address: emailName}}},
		},
	}
}
