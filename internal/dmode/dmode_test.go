package dmode

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFigure4IsValid(t *testing.T) {
	m := Figure4()
	if err := m.Validate(); err != nil {
		t.Fatalf("Figure4 invalid: %v", err)
	}
	if len(m.Blocks) != 2 {
		t.Fatalf("Figure4 has %d blocks, want 2 (per the paper)", len(m.Blocks))
	}
	if got := m.Blocks[0].EffectiveTimeout(); got != 30*time.Second {
		t.Fatalf("block 0 timeout = %v", got)
	}
	if got := m.Blocks[1].EffectiveTimeout(); got != DefaultBlockTimeout {
		t.Fatalf("block 1 default timeout = %v", got)
	}
}

func TestIMThenEmail(t *testing.T) {
	m := IMThenEmail("buddy-im", "buddy-email", 10*time.Second)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks) != 2 ||
		m.Blocks[0].Actions[0].Address != "buddy-im" ||
		m.Blocks[1].Actions[0].Address != "buddy-email" {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Mode)
		wantErr string
	}{
		{"valid", func(*Mode) {}, ""},
		{"no name", func(m *Mode) { m.Name = "" }, "missing name"},
		{"no blocks", func(m *Mode) { m.Blocks = nil }, "no communication blocks"},
		{"empty block", func(m *Mode) { m.Blocks[0].Actions = nil }, "no actions"},
		{"empty address", func(m *Mode) { m.Blocks[1].Actions[0].Address = "" }, "missing address"},
		{"negative timeout", func(m *Mode) { m.Blocks[0].Timeout = Duration(-time.Second) }, "negative timeout"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := Figure4()
			tt.mutate(m)
			err := m.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want contains %q", err, tt.wantErr)
			}
		})
	}
}

func TestXMLRoundTrip(t *testing.T) {
	m := Figure4()
	data, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	text := string(data)
	// The document format from Figure 4: blocks with actions naming
	// friendly addresses, timeout attribute in duration syntax.
	for _, want := range []string{`<deliveryMode name="Urgent">`, `timeout="30s"`, `<action address="MSN IM">`} {
		if !strings.Contains(text, want) {
			t.Fatalf("marshaled XML missing %q:\n%s", want, text)
		}
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	assertSameMode(t, m, got)
}

func TestUnmarshalRejects(t *testing.T) {
	for _, in := range []string{
		"<deliveryMode",
		`<deliveryMode name=""><block><action address="x"/></block></deliveryMode>`,
		`<deliveryMode name="m"></deliveryMode>`,
		`<deliveryMode name="m"><block/></deliveryMode>`,
		`<deliveryMode name="m"><block timeout="fast"><action address="x"/></block></deliveryMode>`,
	} {
		if _, err := Unmarshal([]byte(in)); err == nil {
			t.Fatalf("Unmarshal(%q) succeeded", in)
		}
	}
}

func TestDurationAttrOmittedWhenZero(t *testing.T) {
	m := &Mode{Name: "m", Blocks: []Block{{Actions: []Action{{Address: "a"}}}}}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "timeout") {
		t.Fatalf("zero timeout was marshaled: %s", data)
	}
}

func TestDurationAttrParse(t *testing.T) {
	var d Duration
	if err := d.UnmarshalXMLAttr(xml.Attr{Value: "1m30s"}); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 90*time.Second {
		t.Fatalf("parsed %v", time.Duration(d))
	}
	if err := d.UnmarshalXMLAttr(xml.Attr{Value: "ninety"}); err == nil {
		t.Fatal("bad duration accepted")
	}
}

func TestAddressNames(t *testing.T) {
	m := Figure4()
	m.Blocks[1].Actions = append(m.Blocks[1].Actions, Action{Address: "MSN IM"}) // dup
	got := m.AddressNames()
	want := []string{"MSN IM", "Cell SMS", "Work email", "Home email"}
	if len(got) != len(want) {
		t.Fatalf("AddressNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AddressNames() = %v, want %v", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Figure4()
	c := m.Clone()
	c.Blocks[0].Actions[0].Address = "mutated"
	if m.Blocks[0].Actions[0].Address == "mutated" {
		t.Fatal("Clone shares action slice")
	}
}

func TestXMLRoundTripProperty(t *testing.T) {
	f := func(name string, blockSizes []uint8, timeoutSecs []uint16) bool {
		if name == "" || len(blockSizes) == 0 {
			return true
		}
		if len(blockSizes) > 8 {
			blockSizes = blockSizes[:8]
		}
		m := &Mode{Name: sanitize(name)}
		if m.Name == "" {
			return true
		}
		for i, bs := range blockSizes {
			n := int(bs%4) + 1
			var timeout Duration
			if i < len(timeoutSecs) {
				timeout = Duration(time.Duration(timeoutSecs[i]) * time.Second)
			}
			b := Block{Timeout: timeout}
			for j := 0; j < n; j++ {
				b.Actions = append(b.Actions, Action{Address: "addr"})
			}
			m.Blocks = append(m.Blocks, b)
		}
		data, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.Name != m.Name || len(got.Blocks) != len(m.Blocks) {
			return false
		}
		for i := range m.Blocks {
			if got.Blocks[i].Timeout != m.Blocks[i].Timeout ||
				len(got.Blocks[i].Actions) != len(m.Blocks[i].Actions) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func assertSameMode(t *testing.T, want, got *Mode) {
	t.Helper()
	if got.Name != want.Name || len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("mode mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Blocks {
		if got.Blocks[i].Timeout != want.Blocks[i].Timeout {
			t.Fatalf("block %d timeout mismatch", i)
		}
		if len(got.Blocks[i].Actions) != len(want.Blocks[i].Actions) {
			t.Fatalf("block %d action count mismatch", i)
		}
		for j := range want.Blocks[i].Actions {
			if got.Blocks[i].Actions[j].Address != want.Blocks[i].Actions[j].Address {
				t.Fatalf("block %d action %d mismatch", i, j)
			}
		}
	}
}
