// Package stabilize implements MyAlertBuddy's self-stabilization: a
// registry of invariant checks, each run on its own period, that
// detect and correct violations instead of trying to anticipate every
// failure. Checks are expected to heal in place when they can (e.g.
// re-login, drain unprocessed messages, dismiss dialogs); a check that
// keeps failing is escalated so the owner can rejuvenate (gracefully
// terminate and let the MDC restart it).
//
// The paper's periods: the AreYouWorking callback every 3 minutes,
// communication-client sanity checks every minute, unprocessed dialog
// boxes every 20 seconds.
package stabilize

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
)

// Paper-derived default periods.
const (
	DefaultSanityPeriod = time.Minute
	DefaultDialogPeriod = 20 * time.Second
	// DefaultEscalateAfter is how many consecutive failures of one
	// check trigger escalation.
	DefaultEscalateAfter = 3
)

// Check is one registered invariant.
type Check struct {
	// Name identifies the check in journals and counters.
	Name string
	// Period is how often the check runs.
	Period time.Duration
	// Fn verifies the invariant, healing in place where possible. A
	// nil return means the invariant holds (or was restored).
	Fn func() error
	// EscalateAfter overrides DefaultEscalateAfter for this check; 0
	// means the default, negative means never escalate.
	EscalateAfter int
}

// Stabilizer runs the registered checks. Create with New; register
// checks before Start.
type Stabilizer struct {
	clk      clock.Clock
	journal  *faults.Journal
	escalate func(check string, err error)

	mu          sync.Mutex
	checks      []Check
	fails       map[string]int
	counts      map[string]int64 // executions per check
	failCounts  map[string]int64 // failures observed per check
	heals       map[string]int64 // failure streaks ended by a passing run
	escalations map[string]int64 // failure streaks that hit the escalation threshold
	stop        chan struct{}
	started     bool
}

// New builds a stabilizer. escalate is called (at most once per
// failure streak) when a check fails EscalateAfter times in a row; it
// may be nil. journal may be nil.
func New(clk clock.Clock, journal *faults.Journal, escalate func(check string, err error)) (*Stabilizer, error) {
	if clk == nil {
		return nil, errors.New("stabilize: clock is required")
	}
	return &Stabilizer{
		clk:         clk,
		journal:     journal,
		escalate:    escalate,
		fails:       make(map[string]int),
		counts:      make(map[string]int64),
		failCounts:  make(map[string]int64),
		heals:       make(map[string]int64),
		escalations: make(map[string]int64),
	}, nil
}

// Register adds a check. It must be called before Start.
func (s *Stabilizer) Register(c Check) error {
	if c.Name == "" || c.Fn == nil {
		return errors.New("stabilize: check requires Name and Fn")
	}
	if c.Period <= 0 {
		return fmt.Errorf("stabilize: check %q has non-positive period", c.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("stabilize: cannot register after Start")
	}
	for _, existing := range s.checks {
		if existing.Name == c.Name {
			return fmt.Errorf("stabilize: duplicate check %q", c.Name)
		}
	}
	s.checks = append(s.checks, c)
	return nil
}

// Start launches one goroutine per check.
func (s *Stabilizer) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	stop := make(chan struct{})
	s.stop = stop
	checks := append([]Check(nil), s.checks...)
	s.mu.Unlock()
	for _, c := range checks {
		go s.runCheck(c, stop)
	}
}

// Stop halts all checks.
func (s *Stabilizer) Stop() {
	s.mu.Lock()
	if s.started && s.stop != nil {
		close(s.stop)
		s.stop = nil
		s.started = false
	}
	s.mu.Unlock()
}

// RunOnce executes the named check immediately (for tests and for
// forced stabilization after a replay). It returns the check's error.
func (s *Stabilizer) RunOnce(name string) error {
	s.mu.Lock()
	var found *Check
	for i := range s.checks {
		if s.checks[i].Name == name {
			found = &s.checks[i]
			break
		}
	}
	s.mu.Unlock()
	if found == nil {
		return fmt.Errorf("stabilize: no check named %q", name)
	}
	return s.execute(*found)
}

// Executions returns how many times the named check has run.
func (s *Stabilizer) Executions(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[name]
}

// Failures returns how many failures the named check has observed.
func (s *Stabilizer) Failures(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failCounts[name]
}

// CheckStats is one check's lifetime counters.
type CheckStats struct {
	Name string
	// Executions counts runs; Failures counts runs whose Fn returned an
	// error (in-place healing that succeeded returns nil and does not
	// count).
	Executions int64
	Failures   int64
	// Heals counts failure streaks ended by a subsequent passing run —
	// the invariant was violated and then restored.
	Heals int64
	// Escalations counts failure streaks that reached the escalation
	// threshold and invoked the escalate callback.
	Escalations int64
}

// Stats snapshots every registered check's counters, in registration
// order. Checks that have never run report zeros.
func (s *Stabilizer) Stats() []CheckStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CheckStats, len(s.checks))
	for i := range s.checks {
		name := s.checks[i].Name
		out[i] = CheckStats{
			Name:        name,
			Executions:  s.counts[name],
			Failures:    s.failCounts[name],
			Heals:       s.heals[name],
			Escalations: s.escalations[name],
		}
	}
	return out
}

func (s *Stabilizer) runCheck(c Check, stop chan struct{}) {
	ticker := s.clk.NewTicker(c.Period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C():
			_ = s.execute(c)
		}
	}
}

func (s *Stabilizer) execute(c Check) error {
	err := c.Fn()
	s.mu.Lock()
	s.counts[c.Name]++
	threshold := c.EscalateAfter
	if threshold == 0 {
		threshold = DefaultEscalateAfter
	}
	var escalateNow bool
	if err != nil {
		s.failCounts[c.Name]++
		s.fails[c.Name]++
		if threshold > 0 && s.fails[c.Name] == threshold {
			escalateNow = true
			s.escalations[c.Name]++
		}
	} else {
		if s.fails[c.Name] > 0 {
			// A streak of violations just ended with a passing run: the
			// invariant healed (in place or via escalation).
			s.heals[c.Name]++
		}
		s.fails[c.Name] = 0
	}
	escalate := s.escalate
	s.mu.Unlock()
	if err != nil && s.journal != nil {
		s.journal.Recordf(s.clk.Now(), faults.KindFaultInjected, "invariant %q violated: %v", c.Name, err)
	}
	if escalateNow && escalate != nil {
		if s.journal != nil {
			s.journal.Recordf(s.clk.Now(), faults.KindRejuvenation,
				"check %q failed %d consecutive times; escalating", c.Name, threshold)
		}
		escalate(c.Name, err)
	}
	return err
}

// Progress tracks a heartbeat timestamp for liveness checks — the
// paper's "monitoring the timestamps of their progress". The zero
// value is ready to use but reports no progress until the first Beat.
type Progress struct {
	mu   sync.Mutex
	last time.Time
}

// Beat records progress at now.
func (p *Progress) Beat(now time.Time) {
	p.mu.Lock()
	if now.After(p.last) {
		p.last = now
	}
	p.mu.Unlock()
}

// Last returns the most recent beat (zero if none).
func (p *Progress) Last() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last
}

// StaleBy reports whether the last beat is older than maxAge at now.
// A Progress with no beats yet is considered stale.
func (p *Progress) StaleBy(now time.Time, maxAge time.Duration) bool {
	last := p.Last()
	if last.IsZero() {
		return true
	}
	return now.Sub(last) > maxAge
}
