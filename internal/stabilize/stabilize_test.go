package stabilize

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
)

func TestNewRequiresClock(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s, err := New(sim, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok := Check{Name: "x", Period: time.Second, Fn: func() error { return nil }}
	if err := s.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(ok); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := s.Register(Check{Period: time.Second, Fn: func() error { return nil }}); err == nil {
		t.Fatal("unnamed check accepted")
	}
	if err := s.Register(Check{Name: "y", Period: time.Second}); err == nil {
		t.Fatal("fn-less check accepted")
	}
	if err := s.Register(Check{Name: "z", Fn: func() error { return nil }}); err == nil {
		t.Fatal("zero period accepted")
	}
	s.Start()
	defer s.Stop()
	if err := s.Register(Check{Name: "late", Period: time.Second, Fn: func() error { return nil }}); err == nil {
		t.Fatal("post-start registration accepted")
	}
}

func TestChecksRunOnTheirPeriods(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s, _ := New(sim, nil, nil)
	var fast, slow atomic.Int64
	mustRegister(t, s, Check{Name: "fast", Period: 20 * time.Second, Fn: func() error { fast.Add(1); return nil }})
	mustRegister(t, s, Check{Name: "slow", Period: time.Minute, Fn: func() error { slow.Add(1); return nil }})
	s.Start()
	defer s.Stop()
	for i := 0; i < 30; i++ {
		sim.Advance(10 * time.Second)
		time.Sleep(time.Millisecond)
	}
	// 300s window: fast ~15 runs, slow ~5 runs (ticks may coalesce
	// slightly under scheduling jitter).
	if f := fast.Load(); f < 10 || f > 16 {
		t.Fatalf("fast ran %d times", f)
	}
	if sl := slow.Load(); sl < 3 || sl > 6 {
		t.Fatalf("slow ran %d times", sl)
	}
	if s.Executions("fast") != fast.Load() {
		t.Fatal("Executions counter mismatch")
	}
}

func TestFailuresJournaledAndCounted(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	j := &faults.Journal{}
	s, _ := New(sim, j, nil)
	boom := errors.New("boom")
	var healed atomic.Bool
	mustRegister(t, s, Check{Name: "c", Period: time.Second, Fn: func() error {
		if healed.Load() {
			return nil
		}
		return boom
	}, EscalateAfter: -1})
	if err := s.RunOnce("c"); !errors.Is(err, boom) {
		t.Fatalf("RunOnce = %v", err)
	}
	if s.Failures("c") != 1 {
		t.Fatalf("Failures = %d", s.Failures("c"))
	}
	if j.Len() != 1 {
		t.Fatal("violation not journaled")
	}
	healed.Store(true)
	if err := s.RunOnce("c"); err != nil {
		t.Fatalf("RunOnce after heal = %v", err)
	}
}

func TestEscalationAfterConsecutiveFailures(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	j := &faults.Journal{}
	var mu sync.Mutex
	var escalated []string
	s, _ := New(sim, j, func(name string, err error) {
		mu.Lock()
		escalated = append(escalated, name)
		mu.Unlock()
	})
	fail := atomic.Bool{}
	fail.Store(true)
	mustRegister(t, s, Check{Name: "flaky", Period: time.Second, Fn: func() error {
		if fail.Load() {
			return errors.New("nope")
		}
		return nil
	}})
	// Two failures: below the default threshold of 3.
	_ = s.RunOnce("flaky")
	_ = s.RunOnce("flaky")
	mu.Lock()
	n := len(escalated)
	mu.Unlock()
	if n != 0 {
		t.Fatal("escalated too early")
	}
	// Third consecutive failure escalates, exactly once.
	_ = s.RunOnce("flaky")
	_ = s.RunOnce("flaky")
	mu.Lock()
	if len(escalated) != 1 || escalated[0] != "flaky" {
		t.Fatalf("escalated = %v", escalated)
	}
	mu.Unlock()
	if j.Count(faults.KindRejuvenation) != 1 {
		t.Fatal("escalation not journaled")
	}
	// Success resets the streak; three more failures escalate again.
	fail.Store(false)
	_ = s.RunOnce("flaky")
	fail.Store(true)
	_ = s.RunOnce("flaky")
	_ = s.RunOnce("flaky")
	_ = s.RunOnce("flaky")
	mu.Lock()
	defer mu.Unlock()
	if len(escalated) != 2 {
		t.Fatalf("escalated %d times, want 2", len(escalated))
	}
}

func TestStatsCountsHealsAndEscalations(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s, _ := New(sim, nil, func(string, error) {})
	fail := atomic.Bool{}
	mustRegister(t, s, Check{Name: "steady", Period: time.Second, Fn: func() error { return nil }})
	mustRegister(t, s, Check{Name: "flaky", Period: time.Second, EscalateAfter: 2, Fn: func() error {
		if fail.Load() {
			return errors.New("nope")
		}
		return nil
	}})

	_ = s.RunOnce("steady")
	// Streak 1: two failures (escalates at 2), healed by a pass.
	fail.Store(true)
	_ = s.RunOnce("flaky")
	_ = s.RunOnce("flaky")
	fail.Store(false)
	_ = s.RunOnce("flaky")
	// Streak 2: one failure, healed — no escalation.
	fail.Store(true)
	_ = s.RunOnce("flaky")
	fail.Store(false)
	_ = s.RunOnce("flaky")

	stats := s.Stats()
	if len(stats) != 2 || stats[0].Name != "steady" || stats[1].Name != "flaky" {
		t.Fatalf("Stats() = %+v (want registration order)", stats)
	}
	if got := stats[0]; got.Executions != 1 || got.Failures != 0 || got.Heals != 0 || got.Escalations != 0 {
		t.Fatalf("steady stats = %+v", got)
	}
	if got := stats[1]; got.Executions != 5 || got.Failures != 3 || got.Heals != 2 || got.Escalations != 1 {
		t.Fatalf("flaky stats = %+v", got)
	}
}

func TestRunOnceUnknown(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s, _ := New(sim, nil, nil)
	if err := s.RunOnce("ghost"); err == nil {
		t.Fatal("unknown check accepted")
	}
}

func TestStopHaltsChecks(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	s, _ := New(sim, nil, nil)
	var runs atomic.Int64
	mustRegister(t, s, Check{Name: "c", Period: time.Second, Fn: func() error { runs.Add(1); return nil }})
	s.Start()
	sim.Advance(5 * time.Second)
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	before := runs.Load()
	sim.Advance(time.Minute)
	time.Sleep(5 * time.Millisecond)
	if runs.Load() != before {
		t.Fatal("check ran after Stop")
	}
}

func TestProgress(t *testing.T) {
	var p Progress
	now := time.Date(2001, 3, 26, 12, 0, 0, 0, time.UTC)
	if !p.StaleBy(now, time.Minute) {
		t.Fatal("fresh Progress should be stale")
	}
	p.Beat(now)
	if p.StaleBy(now.Add(30*time.Second), time.Minute) {
		t.Fatal("stale too early")
	}
	if !p.StaleBy(now.Add(2*time.Minute), time.Minute) {
		t.Fatal("not stale after maxAge")
	}
	// Beats never move backwards.
	p.Beat(now.Add(-time.Hour))
	if !p.Last().Equal(now) {
		t.Fatalf("Last() = %v", p.Last())
	}
}

func mustRegister(t *testing.T, s *Stabilizer, c Check) {
	t.Helper()
	if err := s.Register(c); err != nil {
		t.Fatal(err)
	}
}
