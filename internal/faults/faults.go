// Package faults provides the fault-injection machinery used to
// exercise SIMBA's fault-tolerance mechanisms: named on/off fault
// flags, virtual-time fault schedules, and a journal of fault and
// recovery actions equivalent to the instrumentation the paper used
// for its one-month availability study.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"simba/internal/clock"
)

// Flag is a named fault condition that components consult, e.g.
// "im-service-outage" or "proxy-unreachable". The zero value is an
// inactive unnamed flag.
type Flag struct {
	mu     sync.Mutex
	name   string
	active bool
	since  time.Time
}

// NewFlag returns an inactive flag with the given name.
func NewFlag(name string) *Flag { return &Flag{name: name} }

// Name returns the flag's name.
func (f *Flag) Name() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.name
}

// Active reports whether the fault is currently injected.
func (f *Flag) Active() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

// Set activates or deactivates the fault at the given (virtual) time.
func (f *Flag) Set(active bool, now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if active && !f.active {
		f.since = now
	}
	f.active = active
}

// ActiveSince returns the activation time, or the zero time when the
// flag is inactive.
func (f *Flag) ActiveSince() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active {
		return time.Time{}
	}
	return f.since
}

// Schedule is a list of actions to run at fixed virtual-time offsets.
// Build it declaratively, then Install it on a clock.
type Schedule struct {
	mu     sync.Mutex
	events []scheduledEvent
}

type scheduledEvent struct {
	after time.Duration
	do    func()
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// At registers do to run after the given offset from Install time.
// It returns the schedule for chaining.
func (s *Schedule) At(after time.Duration, do func()) *Schedule {
	if do == nil {
		panic("faults: nil scheduled action")
	}
	s.mu.Lock()
	s.events = append(s.events, scheduledEvent{after: after, do: do})
	s.mu.Unlock()
	return s
}

// Window activates flag at start and deactivates it at start+duration,
// stamping transitions with the clock's time.
func (s *Schedule) Window(c clock.Clock, flag *Flag, start, duration time.Duration) *Schedule {
	s.At(start, func() { flag.Set(true, c.Now()) })
	s.At(start+duration, func() { flag.Set(false, c.Now()) })
	return s
}

// Len returns the number of scheduled events.
func (s *Schedule) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Install arms every event on the clock. Events with equal offsets run
// in registration order (guaranteed by the simulated clock's FIFO
// tiebreak). Install returns the timers so callers can cancel them.
func (s *Schedule) Install(c clock.Clock) []clock.Timer {
	s.mu.Lock()
	events := append([]scheduledEvent(nil), s.events...)
	s.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].after < events[j].after })
	timers := make([]clock.Timer, 0, len(events))
	for _, ev := range events {
		timers = append(timers, c.AfterFunc(ev.after, ev.do))
	}
	return timers
}

// Kind classifies journal entries. The categories mirror the recovery
// actions the paper counts in Section 5.
type Kind string

// Journal entry kinds.
const (
	KindFaultInjected   Kind = "fault-injected"
	KindFaultCleared    Kind = "fault-cleared"
	KindRelogin         Kind = "relogin"          // simple re-logon fixed a logout
	KindClientRestart   Kind = "client-restart"   // hung client killed and restarted
	KindDialogDismissed Kind = "dialog-dismissed" // monkey thread clicked a dialog
	KindDaemonRestart   Kind = "daemon-restart"   // MDC restarted MyAlertBuddy
	KindMachineReboot   Kind = "machine-reboot"   // MDC escalated to a reboot
	KindRejuvenation    Kind = "rejuvenation"     // scheduled or remote rejuvenation
	KindReplay          Kind = "replay"           // pessimistic-log replay of an alert
	KindOutbox          Kind = "outbox"           // retry-outbox redelivery action
	KindUnrecovered     Kind = "unrecovered"      // failure the mechanisms could not fix
)

// Entry is one journaled fault or recovery action.
type Entry struct {
	At     time.Time
	Kind   Kind
	Detail string
}

// String renders the entry for human consumption.
func (e Entry) String() string {
	return fmt.Sprintf("%s %-17s %s", e.At.Format("2006-01-02 15:04:05"), e.Kind, e.Detail)
}

// Journal is a concurrency-safe, append-only record of fault and
// recovery events. The zero value is ready to use.
type Journal struct {
	mu      sync.Mutex
	entries []Entry
}

// Record appends an entry.
func (j *Journal) Record(at time.Time, kind Kind, detail string) {
	j.mu.Lock()
	j.entries = append(j.entries, Entry{At: at, Kind: kind, Detail: detail})
	j.mu.Unlock()
}

// Recordf appends a formatted entry.
func (j *Journal) Recordf(at time.Time, kind Kind, format string, args ...any) {
	j.Record(at, kind, fmt.Sprintf(format, args...))
}

// Entries returns a copy of all entries in append order.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Entry(nil), j.entries...)
}

// Count returns the number of entries of the given kind.
func (j *Journal) Count(kind Kind) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// CountMatching returns the number of entries of kind whose detail
// contains substr.
func (j *Journal) CountMatching(kind Kind, substr string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Kind == kind && strings.Contains(e.Detail, substr) {
			n++
		}
	}
	return n
}

// Len returns the total number of entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Downtimes pairs fault-injected/fault-cleared entries whose detail
// contains substr and returns the durations of the resulting windows.
// Unclosed windows are ignored.
func (j *Journal) Downtimes(substr string) []time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []time.Duration
	var openAt time.Time
	open := false
	for _, e := range j.entries {
		if !strings.Contains(e.Detail, substr) {
			continue
		}
		switch e.Kind {
		case KindFaultInjected:
			if !open {
				openAt = e.At
				open = true
			}
		case KindFaultCleared:
			if open {
				out = append(out, e.At.Sub(openAt))
				open = false
			}
		}
	}
	return out
}
