// Package faults provides the fault-injection machinery used to
// exercise SIMBA's fault-tolerance mechanisms: named on/off fault
// flags, virtual-time fault schedules, and a journal of fault and
// recovery actions equivalent to the instrumentation the paper used
// for its one-month availability study.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"simba/internal/clock"
)

// Flag is a named fault condition that components consult, e.g.
// "im-service-outage" or "proxy-unreachable". The zero value is an
// inactive unnamed flag.
type Flag struct {
	mu     sync.Mutex
	name   string
	active bool
	since  time.Time
}

// NewFlag returns an inactive flag with the given name.
func NewFlag(name string) *Flag { return &Flag{name: name} }

// Name returns the flag's name.
func (f *Flag) Name() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.name
}

// Active reports whether the fault is currently injected.
func (f *Flag) Active() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

// Set activates or deactivates the fault at the given (virtual) time.
func (f *Flag) Set(active bool, now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if active && !f.active {
		f.since = now
	}
	f.active = active
}

// ActiveSince returns the activation time, or the zero time when the
// flag is inactive.
func (f *Flag) ActiveSince() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active {
		return time.Time{}
	}
	return f.since
}

// Schedule is a list of actions to run at fixed virtual-time offsets.
// Build it declaratively, then Install it on a clock.
type Schedule struct {
	mu     sync.Mutex
	events []scheduledEvent
}

type scheduledEvent struct {
	after time.Duration
	do    func()
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// At registers do to run after the given offset from Install time.
// It returns the schedule for chaining.
func (s *Schedule) At(after time.Duration, do func()) *Schedule {
	if do == nil {
		panic("faults: nil scheduled action")
	}
	s.mu.Lock()
	s.events = append(s.events, scheduledEvent{after: after, do: do})
	s.mu.Unlock()
	return s
}

// Window activates flag at start and deactivates it at start+duration,
// stamping transitions with the clock's time.
func (s *Schedule) Window(c clock.Clock, flag *Flag, start, duration time.Duration) *Schedule {
	s.At(start, func() { flag.Set(true, c.Now()) })
	s.At(start+duration, func() { flag.Set(false, c.Now()) })
	return s
}

// Len returns the number of scheduled events.
func (s *Schedule) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Install arms every event on the clock. Events with equal offsets run
// in registration order (guaranteed by the simulated clock's FIFO
// tiebreak). Install returns the timers so callers can cancel them.
func (s *Schedule) Install(c clock.Clock) []clock.Timer {
	s.mu.Lock()
	events := append([]scheduledEvent(nil), s.events...)
	s.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].after < events[j].after })
	timers := make([]clock.Timer, 0, len(events))
	for _, ev := range events {
		timers = append(timers, c.AfterFunc(ev.after, ev.do))
	}
	return timers
}

// Kind classifies journal entries. The categories mirror the recovery
// actions the paper counts in Section 5.
type Kind string

// Journal entry kinds.
const (
	KindFaultInjected   Kind = "fault-injected"
	KindFaultCleared    Kind = "fault-cleared"
	KindRelogin         Kind = "relogin"          // simple re-logon fixed a logout
	KindClientRestart   Kind = "client-restart"   // hung client killed and restarted
	KindDialogDismissed Kind = "dialog-dismissed" // monkey thread clicked a dialog
	KindDaemonRestart   Kind = "daemon-restart"   // MDC restarted MyAlertBuddy
	KindMachineReboot   Kind = "machine-reboot"   // MDC escalated to a reboot
	KindRejuvenation    Kind = "rejuvenation"     // scheduled or remote rejuvenation
	KindReplay          Kind = "replay"           // pessimistic-log replay of an alert
	KindOutbox          Kind = "outbox"           // retry-outbox redelivery action
	KindUnrecovered     Kind = "unrecovered"      // failure the mechanisms could not fix
)

// Entry is one journaled fault or recovery action.
type Entry struct {
	At     time.Time
	Kind   Kind
	Detail string
}

// String renders the entry for human consumption.
func (e Entry) String() string {
	return fmt.Sprintf("%s %-17s %s", e.At.Format("2006-01-02 15:04:05"), e.Kind, e.Detail)
}

// Journal is a concurrency-safe record of fault and recovery events,
// shared by every watchdog, stabilizer check, and recovery path in a
// process. The zero value is ready to use and unbounded (append-only);
// NewRing builds a bounded journal that retains only the most recent
// entries while keeping exact all-time per-kind counts — the shape a
// long-lived hub wants when N shard supervisors write to one journal
// from concurrent goroutines.
type Journal struct {
	mu      sync.Mutex
	entries []Entry
	// Ring state: capacity 0 means unbounded. With a capacity, entries
	// is a circular buffer and next is the slot the next Record takes.
	capacity int
	next     int
	// All-time accounting, unaffected by ring eviction.
	total   int64
	dropped int64
	counts  map[Kind]int64
}

// NewRing returns a bounded journal retaining the most recent capacity
// entries. Older entries are evicted (counted by Dropped), but Count
// and Len keep exact all-time totals. capacity < 1 panics.
func NewRing(capacity int) *Journal {
	if capacity < 1 {
		panic("faults: NewRing requires capacity >= 1")
	}
	return &Journal{capacity: capacity}
}

// Record appends an entry, evicting the oldest when a ring journal is
// full.
func (j *Journal) Record(at time.Time, kind Kind, detail string) {
	e := Entry{At: at, Kind: kind, Detail: detail}
	j.mu.Lock()
	if j.counts == nil {
		j.counts = make(map[Kind]int64)
	}
	j.counts[kind]++
	j.total++
	if j.capacity > 0 && len(j.entries) == j.capacity {
		j.entries[j.next] = e
		j.next = (j.next + 1) % j.capacity
		j.dropped++
	} else {
		j.entries = append(j.entries, e)
		if j.capacity > 0 {
			j.next = len(j.entries) % j.capacity
		}
	}
	j.mu.Unlock()
}

// Recordf appends a formatted entry.
func (j *Journal) Recordf(at time.Time, kind Kind, format string, args ...any) {
	j.Record(at, kind, fmt.Sprintf(format, args...))
}

// Entries returns a copy of the retained entries in append order (for
// a ring journal, the most recent capacity entries).
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.capacity == 0 || len(j.entries) < j.capacity {
		return append([]Entry(nil), j.entries...)
	}
	out := make([]Entry, 0, len(j.entries))
	out = append(out, j.entries[j.next:]...)
	return append(out, j.entries[:j.next]...)
}

// Count returns the all-time number of entries of the given kind,
// including any a ring journal has evicted.
func (j *Journal) Count(kind Kind) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return int(j.counts[kind])
}

// Dropped returns how many entries a ring journal has evicted (always
// zero for an unbounded journal).
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// CountMatching returns the number of retained entries of kind whose
// detail contains substr (a ring journal cannot match against evicted
// entries).
func (j *Journal) CountMatching(kind Kind, substr string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Kind == kind && strings.Contains(e.Detail, substr) {
			n++
		}
	}
	return n
}

// Len returns the all-time number of entries recorded, including any a
// ring journal has evicted.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return int(j.total)
}

// Downtimes pairs fault-injected/fault-cleared entries whose detail
// contains substr and returns the durations of the resulting windows.
// Unclosed windows are ignored; a ring journal pairs only retained
// entries.
func (j *Journal) Downtimes(substr string) []time.Duration {
	var out []time.Duration
	var openAt time.Time
	open := false
	for _, e := range j.Entries() {
		if !strings.Contains(e.Detail, substr) {
			continue
		}
		switch e.Kind {
		case KindFaultInjected:
			if !open {
				openAt = e.At
				open = true
			}
		case KindFaultCleared:
			if open {
				out = append(out, e.At.Sub(openAt))
				open = false
			}
		}
	}
	return out
}
