package faults

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
)

func TestFlagLifecycle(t *testing.T) {
	f := NewFlag("im-outage")
	if f.Name() != "im-outage" {
		t.Fatalf("Name() = %q", f.Name())
	}
	if f.Active() {
		t.Fatal("new flag active")
	}
	if !f.ActiveSince().IsZero() {
		t.Fatal("inactive flag has ActiveSince")
	}
	at := time.Date(2001, 3, 26, 12, 0, 0, 0, time.UTC)
	f.Set(true, at)
	if !f.Active() || !f.ActiveSince().Equal(at) {
		t.Fatalf("after Set: active=%v since=%v", f.Active(), f.ActiveSince())
	}
	// Re-activating must not move the activation time.
	f.Set(true, at.Add(time.Hour))
	if !f.ActiveSince().Equal(at) {
		t.Fatal("re-activation moved ActiveSince")
	}
	f.Set(false, at.Add(2*time.Hour))
	if f.Active() {
		t.Fatal("flag still active after clear")
	}
}

func TestScheduleRunsInOrder(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	var mu sync.Mutex
	var got []string
	s := NewSchedule().
		At(3*time.Second, func() { mu.Lock(); got = append(got, "c"); mu.Unlock() }).
		At(time.Second, func() { mu.Lock(); got = append(got, "a"); mu.Unlock() }).
		At(2*time.Second, func() { mu.Lock(); got = append(got, "b"); mu.Unlock() })
	if s.Len() != 3 {
		t.Fatalf("Len() = %d", s.Len())
	}
	s.Install(sim)
	sim.Advance(5 * time.Second)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 3 })
	mu.Lock()
	defer mu.Unlock()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v", got)
	}
}

func TestScheduleNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchedule().At(time.Second, nil)
}

func TestWindowTogglesFlag(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	f := NewFlag("outage")
	NewSchedule().Window(sim, f, 10*time.Second, 30*time.Second).Install(sim)
	sim.Advance(5 * time.Second)
	if f.Active() {
		t.Fatal("flag active before window")
	}
	sim.Advance(10 * time.Second) // t=15s, inside window
	waitFor(t, f.Active)
	sim.Advance(30 * time.Second) // t=45s, after window
	waitFor(t, func() bool { return !f.Active() })
}

func TestJournalCounts(t *testing.T) {
	var j Journal
	base := time.Date(2001, 3, 26, 0, 0, 0, 0, time.UTC)
	j.Record(base, KindRelogin, "im client logged out")
	j.Recordf(base.Add(time.Minute), KindRelogin, "im client logged out again (%d)", 2)
	j.Record(base.Add(2*time.Minute), KindClientRestart, "im client hung")
	if j.Len() != 3 {
		t.Fatalf("Len() = %d", j.Len())
	}
	if got := j.Count(KindRelogin); got != 2 {
		t.Fatalf("Count(relogin) = %d", got)
	}
	if got := j.CountMatching(KindRelogin, "again"); got != 1 {
		t.Fatalf("CountMatching = %d", got)
	}
	entries := j.Entries()
	if len(entries) != 3 || entries[0].Kind != KindRelogin {
		t.Fatalf("Entries() = %v", entries)
	}
	if s := entries[0].String(); s == "" {
		t.Fatal("empty entry string")
	}
}

func TestJournalDowntimes(t *testing.T) {
	var j Journal
	base := time.Date(2001, 3, 1, 0, 0, 0, 0, time.UTC)
	j.Record(base, KindFaultInjected, "im-service outage")
	j.Record(base.Add(4*time.Minute), KindFaultCleared, "im-service outage")
	j.Record(base.Add(time.Hour), KindFaultInjected, "im-service outage")
	j.Record(base.Add(time.Hour+103*time.Minute), KindFaultCleared, "im-service outage")
	j.Record(base.Add(2*time.Hour), KindFaultInjected, "email outage") // different detail
	j.Record(base.Add(3*time.Hour), KindFaultInjected, "im-service outage")
	// last window never cleared
	got := j.Downtimes("im-service")
	if len(got) != 2 {
		t.Fatalf("Downtimes = %v", got)
	}
	if got[0] != 4*time.Minute || got[1] != 103*time.Minute {
		t.Fatalf("Downtimes = %v", got)
	}
}

func TestJournalConcurrent(t *testing.T) {
	var j Journal
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				j.Record(time.Time{}, KindReplay, "x")
			}
		}()
	}
	wg.Wait()
	if j.Len() != 800 {
		t.Fatalf("Len() = %d", j.Len())
	}
}

func TestJournalRingEvictsOldestKeepsCounts(t *testing.T) {
	j := NewRing(3)
	for i := 0; i < 5; i++ {
		j.Record(time.Unix(int64(i), 0), KindReplay, fmt.Sprintf("e%d", i))
	}
	entries := j.Entries()
	if len(entries) != 3 {
		t.Fatalf("retained %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if want := fmt.Sprintf("e%d", i+2); e.Detail != want {
			t.Fatalf("entry %d = %q, want %q (chronological order)", i, e.Detail, want)
		}
	}
	if j.Len() != 5 {
		t.Fatalf("Len() = %d, want all-time 5", j.Len())
	}
	if j.Count(KindReplay) != 5 {
		t.Fatalf("Count(replay) = %d, want all-time 5", j.Count(KindReplay))
	}
	if j.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", j.Dropped())
	}
	// CountMatching sees only retained entries, by contract.
	if got := j.CountMatching(KindReplay, "e0"); got != 0 {
		t.Fatalf("CountMatching found evicted entry %d times", got)
	}
}

func TestJournalRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestJournalRingConcurrent(t *testing.T) {
	j := NewRing(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				j.Record(time.Time{}, KindReplay, "x")
				j.Entries()
				j.Downtimes("x")
			}
		}()
	}
	wg.Wait()
	if j.Len() != 800 || len(j.Entries()) != 16 || j.Dropped() != 800-16 {
		t.Fatalf("Len=%d retained=%d dropped=%d", j.Len(), len(j.Entries()), j.Dropped())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRandomEventsReproducibleAndSorted(t *testing.T) {
	gen := func() []RandomEvent {
		return RandomEvents(dist.NewRNG(7), 24*time.Hour, map[string]float64{
			"crash": 10, "outage": 3, "zero": 0,
		})
	}
	a, b := gen(), gen()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different timelines")
		}
		if a[i].At < 0 || a[i].At >= 24*time.Hour {
			t.Fatalf("event outside horizon: %+v", a[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatal("events not sorted")
		}
		if a[i].Kind == "zero" {
			t.Fatal("zero-rate kind produced events")
		}
	}
	// Expected counts are approximately honored across seeds.
	total := 0
	for seed := int64(0); seed < 20; seed++ {
		total += len(RandomEvents(dist.NewRNG(seed), 24*time.Hour, map[string]float64{"crash": 10}))
	}
	mean := float64(total) / 20
	if mean < 6 || mean > 14 {
		t.Fatalf("mean event count %.1f, want ≈10", mean)
	}
}
