package faults

import (
	"sort"
	"time"

	"simba/internal/dist"
)

// RandomEvent is one generated fault occurrence.
type RandomEvent struct {
	At   time.Duration
	Kind string
}

// RandomEvents draws a randomized fault timeline over the horizon:
// for each kind, occurrences form a Poisson process whose expected
// count over the whole horizon is the given rate. The result is
// sorted by time. Deterministic for a given RNG state.
func RandomEvents(rng *dist.RNG, horizon time.Duration, expectedCounts map[string]float64) []RandomEvent {
	var out []RandomEvent
	// Iterate kinds in sorted order so the RNG consumption order — and
	// therefore the whole timeline — is reproducible.
	kinds := make([]string, 0, len(expectedCounts))
	for k := range expectedCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		rate := expectedCounts[kind]
		if rate <= 0 {
			continue
		}
		mean := time.Duration(float64(horizon) / rate)
		t := time.Duration(0)
		for {
			t += time.Duration(rng.ExpFloat64() * float64(mean))
			if t >= horizon {
				break
			}
			out = append(out, RandomEvent{At: t, Kind: kind})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
