// Package ops is the hub's HTTP admin plane: liveness and per-shard
// health for monitoring, tenant CRUD for provisioning, and POST
// triggers for the recovery verbs (targeted shard restart, graceful
// rejuvenation) that the supervision plane otherwise drives
// automatically. Everything is stdlib net/http and JSON; the server is
// meant to listen on a loopback or operations network, not the public
// alert ingress.
package ops

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"simba/internal/hub"
	"simba/internal/mdc"
	"simba/internal/metrics"
	"simba/internal/stabilize"
)

// Config parameterizes a Server.
type Config struct {
	// Hub is the hub under administration; required.
	Hub *hub.Hub
	// Supervisor, when set, contributes watchdog and invariant counters
	// to /healthz. Optional — the admin plane works on an unsupervised
	// hub.
	Supervisor *hub.Supervisor
}

// Server is the admin plane's handler set plus an optional listener.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
}

// NewServer builds the admin plane over the given hub.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Hub == nil {
		return nil, errors.New("ops: Config requires Hub")
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /shards", s.handleShards)
	s.mux.HandleFunc("GET /shards/{id}", s.handleShard)
	s.mux.HandleFunc("POST /shards/{id}/restart", s.handleShardRestart)
	s.mux.HandleFunc("POST /shards/{id}/rejuvenate", s.handleShardRejuvenate)
	s.mux.HandleFunc("POST /rejuvenate", s.handleRejuvenateAll)
	s.mux.HandleFunc("GET /users", s.handleListUsers)
	s.mux.HandleFunc("POST /users", s.handleAddUser)
	s.mux.HandleFunc("DELETE /users/{user}", s.handleRemoveUser)
	return s, nil
}

// Handler returns the admin mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr and serves the admin plane until Close. It returns
// the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.http = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener, if any.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// ShardStatus is one shard's health in wire form.
type ShardStatus struct {
	Shard         int       `json:"shard"`
	State         string    `json:"state"`
	Generation    int64     `json:"generation"`
	Depth         int64     `json:"depth"`
	InFlight      int64     `json:"in_flight"`
	LastProgress  time.Time `json:"last_progress"`
	Restarts      int64     `json:"restarts"`
	Rejuvenations int64     `json:"rejuvenations"`
}

func shardStatus(h hub.Health) ShardStatus {
	return ShardStatus{
		Shard:         h.Shard,
		State:         h.State.String(),
		Generation:    h.Generation,
		Depth:         h.Depth,
		InFlight:      h.InFlight,
		LastProgress:  h.LastProgress,
		Restarts:      h.Restarts,
		Rejuvenations: h.Rejuvenations,
	}
}

// HealthReport is the /healthz body.
type HealthReport struct {
	// OK is false when any shard is Stopped — the one state with no
	// path back to serving without operator action. Transitional states
	// (quiescing, restarting) are alive: the recovery machinery owns
	// them and bounds them with timeouts.
	OK         bool              `json:"ok"`
	Users      int               `json:"users"`
	WALBacklog int               `json:"wal_backlog"`
	Shards     []ShardStatus     `json:"shards"`
	Watchdog   []mdc.UnitStats   `json:"watchdog,omitempty"`
	Invariants []CheckStatus     `json:"invariants,omitempty"`
	ProbeLat   *ProbeLatencyView `json:"probe_latency_us,omitempty"`
}

// CheckStatus is one stabilize check's counters in wire form.
type CheckStatus struct {
	Name        string `json:"name"`
	Executions  int64  `json:"executions"`
	Failures    int64  `json:"failures"`
	Heals       int64  `json:"heals"`
	Escalations int64  `json:"escalations"`
}

// ProbeLatencyView summarizes the probe histogram for JSON.
type ProbeLatencyView struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
}

func checkStatuses(stats []stabilize.CheckStats) []CheckStatus {
	out := make([]CheckStatus, len(stats))
	for i, c := range stats {
		out[i] = CheckStatus{
			Name:        c.Name,
			Executions:  c.Executions,
			Failures:    c.Failures,
			Heals:       c.Heals,
			Escalations: c.Escalations,
		}
	}
	return out
}

func probeLatencyView(s metrics.HistogramSnapshot) *ProbeLatencyView {
	if s.Count == 0 {
		return nil
	}
	return &ProbeLatencyView{Count: s.Count, Mean: s.Mean(), Max: s.Max}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.cfg.Hub
	report := HealthReport{OK: true, Users: h.Users(), WALBacklog: h.WALBacklog()}
	for _, hl := range h.Healths() {
		if hl.State == hub.ShardStopped {
			report.OK = false
		}
		report.Shards = append(report.Shards, shardStatus(hl))
	}
	if sup := s.cfg.Supervisor; sup != nil {
		report.Watchdog = sup.WatchdogStats()
		report.Invariants = checkStatuses(sup.InvariantStats())
		report.ProbeLat = probeLatencyView(sup.ProbeLatency())
	}
	code := http.StatusOK
	if !report.OK {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, report)
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	healths := s.cfg.Hub.Healths()
	out := make([]ShardStatus, len(healths))
	for i, hl := range healths {
		out[i] = shardStatus(hl)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardID(w, r)
	if !ok {
		return
	}
	hl, err := s.cfg.Hub.ShardHealth(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, shardStatus(hl))
}

func (s *Server) handleShardRestart(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardID(w, r)
	if !ok {
		return
	}
	if err := s.cfg.Hub.RestartShard(id, "admin request"); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	hl, _ := s.cfg.Hub.ShardHealth(id)
	writeJSON(w, http.StatusOK, shardStatus(hl))
}

func (s *Server) handleShardRejuvenate(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardID(w, r)
	if !ok {
		return
	}
	if err := s.cfg.Hub.RejuvenateShard(id); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	hl, _ := s.cfg.Hub.ShardHealth(id)
	writeJSON(w, http.StatusOK, shardStatus(hl))
}

func (s *Server) handleRejuvenateAll(w http.ResponseWriter, r *http.Request) {
	if err := s.cfg.Hub.RejuvenateAll(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	healths := s.cfg.Hub.Healths()
	out := make([]ShardStatus, len(healths))
	for i, hl := range healths {
		out[i] = shardStatus(hl)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleListUsers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Hub.UserNames())
}

// addUserRequest is the POST /users body.
type addUserRequest struct {
	User string `json:"user"`
}

func (s *Server) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req addUserRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if req.User == "" {
		writeError(w, http.StatusBadRequest, errors.New("user is required"))
		return
	}
	if _, err := s.cfg.Hub.AddUser(req.User); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"user": req.User})
}

func (s *Server) handleRemoveUser(w http.ResponseWriter, r *http.Request) {
	user := r.PathValue("user")
	if err := s.cfg.Hub.RemoveUser(user); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) shardID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shard id %q: %w", r.PathValue("id"), err))
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
