package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/hub"
	"simba/internal/mab"
)

// newTestPlane builds a started 2-shard hub with a few tenants, its
// supervision plane, and the admin server.
func newTestPlane(t *testing.T) (*hub.Hub, *Server) {
	t.Helper()
	clk := clock.NewReal()
	h, err := hub.New(hub.Config{
		Clock:   clk,
		Sink:    hub.NewSimSink(dist.NewRNG(5), 2, nil, 0),
		Shards:  2,
		WALPath: filepath.Join(t.TempDir(), "hub.wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b, err := h.AddUser(fmt.Sprintf("user-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Drain() })
	sup, err := h.Supervise(hub.SuperviseConfig{InvariantPeriod: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)
	s, err := NewServer(Config{Hub: h, Supervisor: sup})
	if err != nil {
		t.Fatal(err)
	}
	return h, s
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func TestNewServerRequiresHub(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("nil hub accepted")
	}
}

func TestHealthzReportsRunningShards(t *testing.T) {
	_, s := newTestPlane(t)
	w := do(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", w.Code, w.Body)
	}
	var report HealthReport
	if err := json.Unmarshal(w.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if !report.OK || report.Users != 4 || len(report.Shards) != 2 {
		t.Fatalf("report = %+v", report)
	}
	for _, sh := range report.Shards {
		if sh.State != "running" || sh.Generation != 1 {
			t.Fatalf("shard %d = %+v", sh.Shard, sh)
		}
	}
	if len(report.Watchdog) != 2 || len(report.Invariants) == 0 {
		t.Fatalf("supervision counters missing: %+v", report)
	}
}

func TestShardRestartEndpointBumpsGeneration(t *testing.T) {
	_, s := newTestPlane(t)
	w := do(t, s, "POST", "/shards/1/restart", "")
	if w.Code != http.StatusOK {
		t.Fatalf("POST /shards/1/restart = %d: %s", w.Code, w.Body)
	}
	var st ShardStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || st.Restarts != 1 || st.State != "running" {
		t.Fatalf("restarted shard = %+v", st)
	}
	if w := do(t, s, "POST", "/shards/99/restart", ""); w.Code != http.StatusConflict {
		t.Fatalf("restart of unknown shard = %d", w.Code)
	}
	if w := do(t, s, "POST", "/shards/bogus/restart", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("restart with bad id = %d", w.Code)
	}
}

func TestRejuvenateAllEndpoint(t *testing.T) {
	_, s := newTestPlane(t)
	w := do(t, s, "POST", "/rejuvenate", "")
	if w.Code != http.StatusOK {
		t.Fatalf("POST /rejuvenate = %d: %s", w.Code, w.Body)
	}
	var shards []ShardStatus
	if err := json.Unmarshal(w.Body.Bytes(), &shards); err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if sh.Rejuvenations != 1 || sh.Generation != 2 {
			t.Fatalf("shard %d after rolling rejuvenation = %+v", sh.Shard, sh)
		}
	}
}

func TestTenantCRUD(t *testing.T) {
	h, s := newTestPlane(t)
	if w := do(t, s, "POST", "/users", `{"user":"walk-in"}`); w.Code != http.StatusCreated {
		t.Fatalf("POST /users = %d: %s", w.Code, w.Body)
	}
	w := do(t, s, "GET", "/users", "")
	var users []string
	if err := json.Unmarshal(w.Body.Bytes(), &users); err != nil {
		t.Fatal(err)
	}
	if len(users) != 5 {
		t.Fatalf("users = %v", users)
	}
	if w := do(t, s, "DELETE", "/users/walk-in", ""); w.Code != http.StatusNoContent {
		t.Fatalf("DELETE /users/walk-in = %d: %s", w.Code, w.Body)
	}
	if h.Users() != 4 {
		t.Fatalf("Users() = %d after delete", h.Users())
	}
	if w := do(t, s, "DELETE", "/users/walk-in", ""); w.Code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d", w.Code)
	}
	if w := do(t, s, "POST", "/users", `{"user":""}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty user accepted: %d", w.Code)
	}
	if w := do(t, s, "POST", "/users", `not-json`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body accepted: %d", w.Code)
	}
}

// TestHealthzTurnsUnavailableOnStoppedShard drives real traffic first
// so the stopped state is the hub's, not a synthetic fixture.
func TestHealthzTurnsUnavailableOnStoppedShard(t *testing.T) {
	h, s := newTestPlane(t)
	a := &alert.Alert{ID: "a-1", Source: "portal", Subject: "s", Urgency: alert.UrgencyNormal, Created: time.Now()}
	if err := h.Submit("user-0", a); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz on drained hub = %d: %s", w.Code, w.Body)
	}
	var report HealthReport
	if err := json.Unmarshal(w.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Fatalf("report.OK = true on drained hub")
	}
}

func TestListenServesOverTCP(t *testing.T) {
	_, s := newTestPlane(t)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz over TCP = %d", resp.StatusCode)
	}
}
