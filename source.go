package simba

import (
	"errors"
	"time"

	"simba/internal/aladdin"
	"simba/internal/assistant"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/im"
	"simba/internal/proxy"
	"simba/internal/wish"
)

// SourceLink is the source-side SIMBA library instance: a lightweight
// IM endpoint plus email sender feeding a delivery engine, and a
// Target aimed at a buddy ("IM with acknowledgement, fallback email").
// One link can be shared by any number of alert sources.
type SourceLink struct {
	Engine *Engine
	Target *Target

	endpoint *core.DirectIM
}

// NewSourceLink provisions (if needed) the source's IM handle and
// mailbox on the world and wires a link to the buddy's addresses.
func NewSourceLink(w *World, imHandle, emailAddr string, buddy *Buddy, ackTimeout time.Duration) (*SourceLink, error) {
	if buddy == nil {
		return nil, errors.New("simba: NewSourceLink requires a buddy")
	}
	if _, err := w.IM.Status(imHandle); err != nil {
		if err := w.IM.Register(imHandle); err != nil {
			return nil, err
		}
	}
	if _, ok := w.Email.Mailbox(emailAddr); !ok {
		if _, err := w.Email.CreateMailbox(emailAddr); err != nil {
			return nil, err
		}
	}
	emailSender, err := core.NewDirectEmail(w.Email, emailAddr)
	if err != nil {
		return nil, err
	}
	ep, err := core.NewDirectIM(w.Clock, w.IM, imHandle, nil)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(w.Clock, ep, emailSender)
	if err != nil {
		return nil, err
	}
	ep.SetOnMessage(func(m im.Message) { engine.HandleIncoming(m) })
	if ackTimeout <= 0 {
		ackTimeout = 15 * time.Second
	}
	target, err := core.BuddyTarget(engine, buddy.IMHandle(), buddy.EmailAddress(), dmode.Duration(ackTimeout))
	if err != nil {
		return nil, err
	}
	return &SourceLink{Engine: engine, Target: target, endpoint: ep}, nil
}

// Start brings the link online.
func (l *SourceLink) Start() error { return l.endpoint.Start() }

// Stop takes the link offline.
func (l *SourceLink) Stop() { l.endpoint.Stop() }

// Deliver sends one alert to the buddy. It blocks on virtual time, so
// call it under World.Drive (or from a goroutine while something else
// advances the clock).
func (l *SourceLink) Deliver(a *Alert) (*Report, error) { return l.Target.Deliver(a) }

// NewAlertProxy builds an alert proxy polling the world's web and
// delivering through the link.
func NewAlertProxy(w *World, link *SourceLink) (*AlertProxy, error) {
	return proxy.New(w.Clock, w.Web, link.Target)
}

// HomeOptions tunes the simulated Aladdin home.
type HomeOptions struct {
	// OnReport observes every alert delivery. Optional.
	OnReport func(a *Alert, rep *Report, err error)
}

// NewHome builds a simulated Aladdin home delivering through the link.
func NewHome(w *World, link *SourceLink, opts HomeOptions) (*Home, error) {
	return aladdin.New(aladdin.Config{
		Clock:    w.Clock,
		RNG:      dist.NewRNG(w.seed + 11),
		Target:   link.Target,
		OnReport: opts.OnReport,
	})
}

// NaiveRedundantMode is the pre-SIMBA Aladdin policy: every alert as
// two duplicated emails and two duplicated SMS messages.
func NaiveRedundantMode(email1, email2, sms1, sms2 string) *DeliveryMode {
	return aladdin.NaiveRedundantMode(email1, email2, sms1, sms2)
}

// WISHOptions describes the tracked space.
type WISHOptions struct {
	APs   []AccessPoint
	Zones []Zone
}

// WISHAP places an access point.
func WISHAP(id string, x, y float64) AccessPoint { return AccessPoint{ID: id, X: x, Y: y} }

// WISHZone names a rectangular region.
func WISHZone(name string, minX, minY, maxX, maxY float64) Zone {
	return Zone{Name: name, MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// NewWISHServer builds a location server delivering through the link.
func NewWISHServer(w *World, link *SourceLink, opts WISHOptions) (*WISHServer, error) {
	return wish.NewServer(wish.ServerConfig{
		Clock:  w.Clock,
		RNG:    dist.NewRNG(w.seed + 12),
		Model:  wish.Model{APs: opts.APs},
		Zones:  opts.Zones,
		Target: link.Target,
	})
}

// NewWISHClient builds a beaconing client for the server.
func NewWISHClient(w *World, server *WISHServer, user string, beaconPeriod time.Duration) (*WISHClient, error) {
	return wish.NewClient(w.Clock, dist.NewRNG(w.seed+13), server, user, beaconPeriod)
}

// NewDesktopAssistant builds a desktop assistant delivering through
// the link.
func NewDesktopAssistant(w *World, link *SourceLink, idleThreshold time.Duration) (*DesktopAssistant, error) {
	return assistant.New(assistant.Config{
		Clock:         w.Clock,
		Target:        link.Target,
		IdleThreshold: idleThreshold,
	})
}
