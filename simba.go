package simba

import (
	"simba/internal/addr"
	"simba/internal/aladdin"
	"simba/internal/alert"
	"simba/internal/assistant"
	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dmode"
	"simba/internal/email"
	"simba/internal/enduser"
	"simba/internal/faults"
	"simba/internal/im"
	"simba/internal/mab"
	"simba/internal/mdc"
	"simba/internal/proxy"
	"simba/internal/sms"
	"simba/internal/websim"
	"simba/internal/wish"
)

// Core data types.
type (
	// Alert is a single user-subscribed notification.
	Alert = alert.Alert
	// Urgency expresses how time-critical an alert is.
	Urgency = alert.Urgency
	// Address is one registered delivery address.
	Address = addr.Address
	// AddressType is a communication type (IM, SMS, EM).
	AddressType = addr.Type
	// AddressRegistry is a user's mutable address book.
	AddressRegistry = addr.Registry
	// DeliveryMode is a named document of communication blocks.
	DeliveryMode = dmode.Mode
	// Block is one communication block of a delivery mode.
	Block = dmode.Block
	// Action addresses one delivery attempt within a block.
	Action = dmode.Action
	// ModeDuration is a time.Duration that XML-marshals as "30s".
	ModeDuration = dmode.Duration
	// Report summarizes one delivery-mode execution.
	Report = core.Report
	// Subscription maps a category to a subscriber and mode.
	Subscription = core.Subscription
	// Profile is one registered user's addresses and delivery modes.
	Profile = core.Profile
	// Store is the subscription layer.
	Store = core.Store
	// Engine is the buddy-side delivery shell over the mode executor.
	Engine = core.Engine
	// Executor is the stateless, reentrant delivery-mode executor
	// shared by the buddy and the hub.
	Executor = core.Executor
	// Channel delivers one delivery-mode action over one communication
	// type.
	Channel = core.Channel
	// ChannelFunc adapts a function to Channel.
	ChannelFunc = core.ChannelFunc
	// ChannelRegistry maps communication types to channels.
	ChannelRegistry = core.Channels
	// SendRequest is one action-level delivery request handed to a
	// channel.
	SendRequest = core.Send
	// SendResult describes one channel send.
	SendResult = core.SendResult
	// DeliveryContext carries the hosting identity of one delivery.
	DeliveryContext = core.DeliveryContext
	// ActionError is one action failure in debuggable form.
	ActionError = core.ActionError
	// Acks tracks pending IM acknowledgements across deliveries.
	Acks = core.Acks
	// Target bundles an engine, registry, and mode.
	Target = core.Target
	// Clock abstracts time (real or simulated).
	Clock = clock.Clock
	// SimClock is the discrete-event simulated clock.
	SimClock = clock.Sim
	// Journal records fault and recovery actions.
	Journal = faults.Journal
	// SourceRule is a per-source classification rule.
	SourceRule = mab.SourceRule
	// Buddy is MyAlertBuddy.
	Buddy = mab.Service
	// Watchdog is the Master Daemon Controller.
	Watchdog = mdc.Controller
	// EndUser is the simulated human endpoint.
	EndUser = enduser.User
	// Receipt is one alert observed by an EndUser.
	Receipt = enduser.Receipt
	// Machine hosts the buddy and its client software.
	Machine = automation.Machine
	// IMService is the simulated instant-messaging cloud.
	IMService = im.Service
	// EmailService is the simulated email infrastructure.
	EmailService = email.Service
	// SMSCarrier is the simulated cellular carrier.
	SMSCarrier = sms.Carrier
	// Web is the simulated web the alert proxy polls.
	Web = websim.Web
	// Site is one simulated web site.
	Site = websim.Site
	// AlertProxy polls pages and alerts on block changes.
	AlertProxy = proxy.Proxy
	// Monitor describes one page block watched by the proxy.
	Monitor = proxy.Monitor
	// Home is the simulated Aladdin deployment.
	Home = aladdin.Home
	// WISHServer is the location server and its alert service.
	WISHServer = wish.Server
	// WISHClient beacons signal measurements for one user.
	WISHClient = wish.Client
	// AccessPoint is one 802.11 AP at a known position.
	AccessPoint = wish.AP
	// Zone is a named rectangular region of the tracked map.
	Zone = wish.Zone
	// DesktopAssistant forwards important email/reminders when away.
	DesktopAssistant = assistant.Assistant
)

// Urgency levels.
const (
	UrgencyLow      = alert.UrgencyLow
	UrgencyNormal   = alert.UrgencyNormal
	UrgencyHigh     = alert.UrgencyHigh
	UrgencyCritical = alert.UrgencyCritical
)

// Communication types.
const (
	TypeIM    = addr.TypeIM
	TypeSMS   = addr.TypeSMS
	TypeEmail = addr.TypeEmail
	// TypeSink is the hub's flat-substrate pseudo-channel.
	TypeSink = addr.TypeSink
)

// Classifier keyword-extraction strategies.
const (
	ExtractNative  = mab.ExtractNative
	ExtractSender  = mab.ExtractSender
	ExtractSubject = mab.ExtractSubject
)

// RejuvenateKeyword triggers remote rejuvenation of a buddy when it
// appears in an IM text or email subject.
const RejuvenateKeyword = mab.RejuvenateKeyword

// NextAlertID returns a process-unique alert ID with the given prefix.
func NextAlertID(prefix string) string { return alert.NextID(prefix) }

// Figure4Mode returns the paper's Figure 4 sample delivery mode.
func Figure4Mode() *DeliveryMode { return dmode.Figure4() }

// IMThenEmailMode returns the canonical "IM with acknowledgement,
// fallback email" mode.
func IMThenEmailMode(imName, emailName string, ackTimeout ModeDuration) *DeliveryMode {
	return &DeliveryMode{Name: "IMThenEmail", Blocks: []Block{
		{Timeout: ackTimeout, Actions: []Action{{Address: imName}}},
		{Actions: []Action{{Address: emailName}}},
	}}
}

// ParseDeliveryMode parses and validates a delivery-mode XML document.
func ParseDeliveryMode(data []byte) (*DeliveryMode, error) { return dmode.Unmarshal(data) }

// SMSGatewayAddress returns the email-style carrier gateway address
// for a phone number.
func SMSGatewayAddress(number string) string { return sms.GatewayAddress(number) }

// NewChannelRegistry returns an empty delivery-channel registry, for
// wiring custom channels into a hub (hub.Config.Channels).
func NewChannelRegistry() *ChannelRegistry { return core.NewChannels() }

// DirectSMSChannel returns a delivery channel that texts the carrier
// directly instead of riding the email-to-SMS gateway. Register it
// under TypeSMS via BuddyOptions.ConfigureChannels (buddy) or a
// channel registry handed to the hub.
func DirectSMSChannel(carrier *SMSCarrier, fromNumber string) Channel {
	return core.NewSMSChannel(carrier, fromNumber)
}
