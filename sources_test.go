package simba_test

import (
	"path/filepath"
	"testing"
	"time"

	"simba"
)

// facadeFixture wires a buddy+user over the public API for source tests.
type facadeFixture struct {
	t     *testing.T
	world *simba.World
	buddy *simba.Buddy
	user  *simba.EndUser
	link  *simba.SourceLink
}

func newFacadeFixture(t *testing.T) *facadeFixture {
	t.Helper()
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.CreatePersonalAccounts("u-im", []string{"u@work.sim"}, "5559999"); err != nil {
		t.Fatal(err)
	}
	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle: "fx-buddy", EmailAddress: "fx-buddy@sim",
		LogPath:                    filepath.Join(t.TempDir(), "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"alert-proxy", "aladdin", "wish", "desktop-assistant"} {
		buddy.Classifier().Accept(simba.SourceRule{Source: src, Extract: simba.ExtractNative})
	}
	agg := buddy.Aggregator()
	agg.Map("Election", "News")
	agg.Map("Security", "News")
	agg.Map("Location", "News")
	agg.Map("Email", "News")
	profile, err := buddy.Store().RegisterUser("u")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []simba.Address{
		{Type: simba.TypeIM, Name: "IM", Target: "u-im", Enabled: true},
		{Type: simba.TypeEmail, Name: "EM", Target: "u@work.sim", Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := profile.DefineMode(simba.IMThenEmailMode("IM", "EM", simba.ModeDuration(10*time.Second))); err != nil {
		t.Fatal(err)
	}
	if err := buddy.Store().Subscribe("News", "u", "IMThenEmail"); err != nil {
		t.Fatal(err)
	}
	user, err := simba.NewUser(world, simba.UserOptions{Name: "u", IMHandle: "u-im"})
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(user.Stop)
	if err := simba.StartBuddy(world, buddy); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(buddy.Kill)
	link, err := simba.NewSourceLink(world, "fx-src", "fx-src@sim", buddy, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(link.Stop)
	return &facadeFixture{t: t, world: world, buddy: buddy, user: user, link: link}
}

func TestFacadeAlertProxy(t *testing.T) {
	f := newFacadeFixture(t)
	site, err := f.world.Web.CreateSite("cnn")
	if err != nil {
		t.Fatal(err)
	}
	site.SetContent("election", "[v1]", f.world.Clock.Now())
	p, err := simba.NewAlertProxy(f.world, f.link)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddMonitor(simba.Monitor{
		Name: "m", URL: "cnn/election", PollEvery: time.Second,
		StartKeyword: "[", EndKeyword: "]",
		Source: "alert-proxy", Keywords: []string{"Election"},
	}); err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	f.world.RunFor(3*time.Second, 500*time.Millisecond)
	site.SetContent("election", "[v2]", f.world.Clock.Now())
	if !f.world.RunUntil(func() bool { return f.user.ReceiptCount() >= 1 }, 500*time.Millisecond, time.Minute) {
		t.Fatal("proxy alert never reached the user")
	}
}

func TestFacadeHome(t *testing.T) {
	f := newFacadeFixture(t)
	home, err := simba.NewHome(f.world, f.link, simba.HomeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	home.PressRemote(true)
	if !f.world.RunUntil(func() bool { return f.user.ReceiptCount() >= 1 }, time.Second, 2*time.Minute) {
		t.Fatal("home alert never reached the user")
	}
}

func TestFacadeWISH(t *testing.T) {
	f := newFacadeFixture(t)
	server, err := simba.NewWISHServer(f.world, f.link, simba.WISHOptions{
		APs: []simba.AccessPoint{
			simba.WISHAP("a", 0, 0), simba.WISHAP("b", 40, 0),
			simba.WISHAP("c", 0, 30), simba.WISHAP("d", 40, 30),
		},
		Zones: []simba.Zone{
			simba.WISHZone("west", 0, 0, 20, 30),
			simba.WISHZone("east", 20, 0, 40, 30),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	server.Track("walker", "u")
	client, err := simba.NewWISHClient(f.world, server, "walker", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client.MoveTo(10, 15)
	client.Start()
	defer client.Stop()
	f.world.RunFor(5*time.Second, time.Second)
	before := f.user.ReceiptCount() // settling may already have flapped a zone alert
	client.MoveTo(30, 15)
	if !f.world.RunUntil(func() bool { return f.user.ReceiptCount() > before }, time.Second, 2*time.Minute) {
		t.Fatal("location alert never reached the user")
	}
}

func TestFacadeDesktopAssistant(t *testing.T) {
	f := newFacadeFixture(t)
	asst, err := simba.NewDesktopAssistant(f.world, f.link, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	f.world.RunFor(6*time.Minute, 30*time.Second) // user goes idle
	// IncomingEmail delivers synchronously on virtual time; drive it.
	if err := f.world.Drive(func() {
		asst.IncomingEmail("boss@corp", "signatures", simba.UrgencyHigh)
	}); err != nil {
		t.Fatal(err)
	}
	if !f.world.RunUntil(func() bool { return f.user.ReceiptCount() >= 1 }, time.Second, 2*time.Minute) {
		t.Fatal("assistant alert never reached the user")
	}
}

func TestFacadeNaiveRedundantMode(t *testing.T) {
	m := simba.NaiveRedundantMode("a", "b", "c", "d")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks[0].Actions) != 4 {
		t.Fatalf("mode = %+v", m)
	}
}

func TestFacadeSourceLinkValidation(t *testing.T) {
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simba.NewSourceLink(world, "x", "x@sim", nil, 0); err == nil {
		t.Fatal("nil buddy accepted")
	}
}
